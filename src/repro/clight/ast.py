"""Abstract syntax of our Clight (paper §4.1, extended as noted).

Statement grammar, extending the paper's subset with ``Continue`` (the
paper lists it as an easy addition) and ``Block`` (the structured target of
the frontend's ``switch`` lowering; ``break`` exits the nearest enclosing
``Block`` *or* loop)::

    S ::= skip | x = E | store(chunk, Ea, Ev) | x = f(E*) | S1; S2
        | loop S1 S2 | block S | if (E) S1 else S2
        | break | continue | return E?

``loop S1 S2`` is CompCert's ``Sloop``: run ``S1``; ``continue`` inside
``S1`` jumps to ``S2``; after ``S1`` (or on continue) run ``S2``; then
repeat.  ``break`` in either part exits the loop.

Expressions are pure; memory reads are explicit ``ELoad`` nodes and all
operators carry their machine interpretation (no C-level overloading
remains).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.memory.chunks import Chunk


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    __slots__ = ()


class EConstInt(Expr):
    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"EConstInt({self.value})"


class EConstFloat(Expr):
    __slots__ = ("value",)

    def __init__(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"EConstFloat({self.value!r})"


class ETemp(Expr):
    """The value of a pure temporary (the paper's theta environment)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return f"ETemp({self.name})"


class EAddrGlobal(Expr):
    """The address of a global variable (looked up in Delta)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return f"EAddrGlobal({self.name})"


class EAddrStack(Expr):
    """The address of an addressable (memory-resident) local variable."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return f"EAddrStack({self.name})"


class ELoad(Expr):
    """A memory read ``load(chunk, addr)``."""

    __slots__ = ("chunk", "addr")

    def __init__(self, chunk: Chunk, addr: Expr) -> None:
        self.chunk = chunk
        self.addr = addr

    def __repr__(self) -> str:
        return f"ELoad({self.chunk.value}, {self.addr!r})"


class EUnop(Expr):
    __slots__ = ("op", "arg")

    def __init__(self, op: str, arg: Expr) -> None:
        self.op = op
        self.arg = arg

    def __repr__(self) -> str:
        return f"EUnop({self.op}, {self.arg!r})"


class EBinop(Expr):
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        self.op = op
        self.left = left
        self.right = right

    def __repr__(self) -> str:
        return f"EBinop({self.op}, {self.left!r}, {self.right!r})"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt:
    __slots__ = ()


class SSkip(Stmt):
    __slots__ = ()

    def __repr__(self) -> str:
        return "skip"


class SSet(Stmt):
    """``temp = expr`` (pure assignment to a temporary)."""

    __slots__ = ("temp", "expr")

    def __init__(self, temp: str, expr: Expr) -> None:
        self.temp = temp
        self.expr = expr

    def __repr__(self) -> str:
        return f"{self.temp} = {self.expr!r}"


class SStore(Stmt):
    """``store(chunk, addr, value)`` (the only write to memory)."""

    __slots__ = ("chunk", "addr", "value")

    def __init__(self, chunk: Chunk, addr: Expr, value: Expr) -> None:
        self.chunk = chunk
        self.addr = addr
        self.value = value

    def __repr__(self) -> str:
        return f"store({self.chunk.value}, {self.addr!r}, {self.value!r})"


class SCall(Stmt):
    """``temp = f(args)`` — direct call; ``temp`` may be None."""

    __slots__ = ("dest", "callee", "args")

    def __init__(self, dest: Optional[str], callee: str,
                 args: Sequence[Expr]) -> None:
        self.dest = dest
        self.callee = callee
        self.args = list(args)

    def __repr__(self) -> str:
        prefix = f"{self.dest} = " if self.dest else ""
        return f"{prefix}{self.callee}({', '.join(map(repr, self.args))})"


class SSeq(Stmt):
    __slots__ = ("first", "second")

    def __init__(self, first: Stmt, second: Stmt) -> None:
        self.first = first
        self.second = second

    def __repr__(self) -> str:
        return f"({self.first!r}; {self.second!r})"


class SIf(Stmt):
    __slots__ = ("cond", "then", "otherwise")

    def __init__(self, cond: Expr, then: Stmt, otherwise: Stmt) -> None:
        self.cond = cond
        self.then = then
        self.otherwise = otherwise

    def __repr__(self) -> str:
        return f"if ({self.cond!r}) {self.then!r} else {self.otherwise!r}"


class SLoop(Stmt):
    """CompCert's ``Sloop body post`` (see module docstring)."""

    __slots__ = ("body", "post")

    def __init__(self, body: Stmt, post: Stmt) -> None:
        self.body = body
        self.post = post

    def __repr__(self) -> str:
        return f"loop {self.body!r} // {self.post!r}"


class SBlock(Stmt):
    """A break-binding block: ``break`` inside exits the block."""

    __slots__ = ("body",)

    def __init__(self, body: Stmt) -> None:
        self.body = body

    def __repr__(self) -> str:
        return f"block {self.body!r}"


class SBreak(Stmt):
    __slots__ = ()

    def __repr__(self) -> str:
        return "break"


class SContinue(Stmt):
    __slots__ = ()

    def __repr__(self) -> str:
        return "continue"


class SReturn(Stmt):
    __slots__ = ("value",)

    def __init__(self, value: Optional[Expr]) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"return {self.value!r}" if self.value is not None else "return"


def seq(*stmts: Stmt) -> Stmt:
    """Right-nested sequence of statements, dropping skips."""
    items = [s for s in stmts if not isinstance(s, SSkip)]
    if not items:
        return SSkip()
    result = items[-1]
    for stmt in reversed(items[:-1]):
        result = SSeq(stmt, result)
    return result


# ---------------------------------------------------------------------------
# Functions and programs
# ---------------------------------------------------------------------------


class StackVar:
    """An addressable local: allocated as a memory block at function entry."""

    __slots__ = ("name", "size", "alignment")

    def __init__(self, name: str, size: int, alignment: int) -> None:
        self.name = name
        self.size = size
        self.alignment = alignment

    def __repr__(self) -> str:
        return f"StackVar({self.name}, {self.size}b, align {self.alignment})"


class Function:
    """A Clight function.

    ``params`` are temporaries bound at entry; ``temps`` lists every
    temporary (including params and compiler-generated ones);
    ``stackvars`` are the addressable locals; ``returns_float`` drives the
    calling convention downstream.
    """

    __slots__ = ("name", "params", "temps", "stackvars", "body",
                 "returns_float", "param_is_float", "float_temps")

    def __init__(self, name: str, params: Sequence[str], temps: Sequence[str],
                 stackvars: Sequence[StackVar], body: Stmt,
                 returns_float: bool = False,
                 param_is_float: Sequence[bool] = (),
                 float_temps: Sequence[str] = ()) -> None:
        self.name = name
        self.params = list(params)
        self.temps = list(temps)
        self.stackvars = list(stackvars)
        self.body = body
        self.returns_float = returns_float
        self.param_is_float = list(param_is_float) or [False] * len(self.params)
        self.float_temps = set(float_temps)


class GlobalVar:
    """A global variable with its byte image (relocations not supported)."""

    __slots__ = ("name", "size", "alignment", "image")

    def __init__(self, name: str, size: int, alignment: int,
                 image: bytes) -> None:
        if len(image) != size:
            raise ValueError(f"image of {name} has {len(image)} bytes, "
                             f"declared size {size}")
        self.name = name
        self.size = size
        self.alignment = alignment
        self.image = image


class Program:
    # __weakref__ lets repro.clight.decode key its per-program cache
    # weakly, so decoded code dies with the program.
    __slots__ = ("globals", "functions", "externals", "main", "__weakref__")

    def __init__(self, globals_: Sequence[GlobalVar],
                 functions: Sequence[Function],
                 externals: Sequence[str],
                 main: str = "main") -> None:
        self.globals = list(globals_)
        self.functions = {f.name: f for f in functions}
        self.externals = set(externals)
        self.main = main

    def function(self, name: str) -> Function:
        return self.functions[name]

    def is_internal(self, name: str) -> bool:
        return name in self.functions
