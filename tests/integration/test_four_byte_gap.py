"""Integration: the paper's §6 headline accuracy claim.

"All manually and automatically derived bounds over-approximate the
actual stack-space consumption by exactly 4 bytes."  For the automatic
bounds this holds whenever the workload drives the worst-case call path,
which the benchmark mains do by construction.
"""

import pytest

from repro.analyzer import StackAnalyzer
from repro.driver import compile_c
from repro.measure import measure_compilation, minimal_stack
from repro.programs.catalog import AUTO_ANALYZABLE
from repro.programs.loader import load_source

FUEL = 150_000_000


@pytest.mark.parametrize("path", AUTO_ANALYZABLE)
def test_gap_is_exactly_four_bytes(path):
    compilation = compile_c(load_source(path), filename=path)
    analysis = StackAnalyzer(compilation.clight).analyze()
    bound = analysis.bound_bytes("main", compilation.metric)
    run = measure_compilation(compilation, fuel=FUEL)
    assert run.converged
    assert bound - run.measured_bytes == 4, (
        f"{path}: bound {bound}, measured {run.measured_bytes}")


def test_theorem1_no_overflow_at_bound():
    """Theorem 1: with sz = verified bound, the program runs on a
    sz + 4-byte stack without overflow."""
    path = "certikos/proc.c"
    compilation = compile_c(load_source(path), filename=path)
    analysis = StackAnalyzer(compilation.clight).analyze()
    sz = analysis.bound_bytes("main", compilation.metric)
    behavior, machine = compilation.run(stack_bytes=sz + 4, fuel=FUEL)
    from repro.events.trace import Converges

    assert isinstance(behavior, Converges)
    assert machine.measured_stack_usage <= sz


def test_minimal_stack_is_bound_minus_four():
    path = "mibench/bitcount.c"
    compilation = compile_c(load_source(path), filename=path)
    analysis = StackAnalyzer(compilation.clight).analyze()
    bound = analysis.bound_bytes("main", compilation.metric)
    assert minimal_stack(compilation, bound, fuel=FUEL) == bound - 4
