/* Table 2: filter_pos — copy all positive elements of the input array
 * into an output array, by linear recursion over the index range.
 * Verified bound: (hi - lo) * M(filter_pos) bytes. */

#ifndef N
#define N 150
#endif

int input[N];
int output[N];
unsigned int seed = 71;

unsigned int rnd() {
    seed = seed * 1664525 + 1013904223;
    return seed;
}

int filter_pos(int sz, int lo, int hi) {
    int count;
    if (lo >= hi) return 0;
    count = filter_pos(sz, lo + 1, hi);
    if (input[lo] > 0) {
        output[count] = input[lo];
        count = count + 1;
    }
    return count;
}

int main() {
    int i, kept;
    for (i = 0; i < N; i++) input[i] = (int)(rnd() % 200) - 100;
    kept = filter_pos(N, 0, N);
    print_int(kept);
    for (i = 0; i < kept; i++) {
        if (output[i] <= 0) return 0;
    }
    return 1;
}
