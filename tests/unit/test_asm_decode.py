"""Differential suite: the pre-decoded interpreter vs. the legacy loop.

The decoded engine (`repro.asm.decode`) must be observationally identical
to the legacy `AsmMachine.step` chain: same traces, same outputs, same ESP
watermark, same step counts, and the same `GoesWrong` reason at the same
point when the stack is undersized.  Anything less would silently change
what Theorem 1 is being tested against.
"""

from __future__ import annotations

import pytest

from repro.asm.machine import AsmMachine, run_program
from repro.driver import compile_c
from repro.events.trace import Converges, GoesWrong
from repro.programs.catalog import ALL_RUNNABLE
from repro.programs.loader import load_source
from repro.testing.oracles import ABLATIONS
from repro.testing.progen import generate_program

# Generous enough for every catalog program at the default stack.
FUEL = 150_000_000


def _behavior_fingerprint(behavior, machine, output):
    return (
        type(behavior).__name__,
        tuple(behavior.trace),
        getattr(behavior, "return_code", None),
        getattr(behavior, "reason", None),
        tuple(output),
        machine.measured_stack_usage,
        machine.steps,
    )


def _run_both(asm, stack_bytes=1 << 20, fuel=FUEL):
    legacy_out: list = []
    decoded_out: list = []
    b_legacy, m_legacy = run_program(asm, stack_bytes=stack_bytes,
                                     output=legacy_out, fuel=fuel,
                                     decoded=False)
    b_decoded, m_decoded = run_program(asm, stack_bytes=stack_bytes,
                                       output=decoded_out, fuel=fuel,
                                       decoded=True)
    return (_behavior_fingerprint(b_legacy, m_legacy, legacy_out),
            _behavior_fingerprint(b_decoded, m_decoded, decoded_out))


@pytest.mark.parametrize("path", ALL_RUNNABLE)
def test_catalog_program_agrees(path):
    compilation = compile_c(load_source(path), filename=path)
    legacy, decoded = _run_both(compilation.asm)
    assert legacy == decoded
    assert legacy[0] == "Converges"


@pytest.mark.parametrize("path", ["paper_example.c", "mibench/dijkstra.c",
                                  "recursive/fib.c", "certikos/proc.c"])
def test_stack_overflow_behavior_agrees(path):
    """Both engines must overflow at the same point with the same reason."""
    compilation = compile_c(load_source(path), filename=path)
    _behavior, machine = run_program(compilation.asm, fuel=FUEL)
    needed = machine.measured_stack_usage
    # 4 bytes fewer than the measured requirement must overflow (the
    # Theorem 1 probe); sweep a few undersized stacks for good measure.
    for stack_bytes in {needed - 4, needed // 2, 8}:
        if stack_bytes < 4:
            continue
        legacy, decoded = _run_both(compilation.asm, stack_bytes=stack_bytes)
        assert legacy == decoded
        assert legacy[0] == "GoesWrong"
        if stack_bytes == needed - 4:
            # The aligned Theorem 1 probe must fail as a stack overflow;
            # other sizes may leave ESP misaligned and die earlier (both
            # engines must still agree on *how*).
            assert "stack overflow" in legacy[3]


@pytest.mark.parametrize("seed", range(0, 40, 5))
def test_generated_seed_agrees(seed):
    source = generate_program(seed)
    for name, options in ABLATIONS.items():
        compilation = compile_c(source, filename=f"seed{seed}.c",
                                options=options)
        legacy, decoded = _run_both(compilation.asm)
        assert legacy == decoded, f"disagreement under ablation {name!r}"


def test_fuel_exhaustion_agrees():
    compilation = compile_c(load_source("compcert/mandelbrot.c"),
                            filename="compcert/mandelbrot.c")
    legacy, decoded = _run_both(compilation.asm, fuel=10_000)
    assert legacy == decoded
    assert legacy[0] == "Diverges"
    assert legacy[6] == 10_000  # both engines charge one step per op


def test_register_file_view():
    """Decoded machines keep name-keyed register access for the monitor
    and the legacy step loop."""
    compilation = compile_c(load_source("paper_example.c"),
                            filename="paper_example.c")
    machine = AsmMachine(compilation.asm, decoded=True)
    assert "eax" in machine.iregs
    machine.iregs["eax"] = 41
    assert machine.iregs["eax"] == 41
    assert machine.iregs.as_dict()["eax"] == 41
    assert set(machine.fregs.keys()) == set(AsmMachine(
        compilation.asm, decoded=False).fregs.keys())


def test_legacy_step_works_on_decoded_machine():
    """The two engines share machine state: stepping the legacy loop on a
    decoded machine must be possible (the differential oracle relies on
    it)."""
    compilation = compile_c(load_source("paper_example.c"),
                            filename="paper_example.c")
    machine = AsmMachine(compilation.asm, decoded=True)
    machine.start()
    for _ in range(100):
        if machine.done:
            break
        machine.step()
    assert machine.steps == 100 or machine.done
