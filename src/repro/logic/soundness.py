"""Runtime validation of logic bounds against the operational semantics.

The paper's Theorem 2 states that a derived precondition bounds the
weight of every trace of the statement.  Its Coq proof is step-indexed;
the executable counterpart here drives the Clight machine on concrete
inputs and checks the inequality ``W_M(trace) <= P(sigma)(M)`` for the
observed traces, for arbitrary user-supplied metrics.  The property-based
tests call this on randomly generated programs and on every benchmark.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.clight import ast as cl
from repro.clight.semantics import run_call, run_program
from repro.events.metrics import StackMetric
from repro.events.trace import GoesWrong, weight_of_trace
from repro.logic.bexpr import BExpr, evaluate
from repro.memory.values import VInt


class SoundnessViolation(AssertionError):
    pass


def validate_program_bound(program: cl.Program, bound: BExpr,
                           metric: StackMetric,
                           fuel: int = 2_000_000) -> int:
    """Run ``main`` and check its trace weight against ``bound``.

    Returns the observed weight.  Wrong behaviors are excluded from the
    claim (the paper's theorems assume safety), so they raise too —
    making the tests surface unsafe benchmarks instead of skipping them.
    """
    behavior = run_program(program, fuel=fuel)
    if isinstance(behavior, GoesWrong):
        raise SoundnessViolation(
            f"program goes wrong ({behavior.reason}); the bound claim "
            "does not apply")
    observed = weight_of_trace(metric, behavior.trace)
    allowed = evaluate(bound, metric.as_dict())
    if observed > allowed:
        raise SoundnessViolation(
            f"weight {observed} exceeds bound {allowed}")
    return observed


def validate_call_bound(program: cl.Program, function: str,
                        args: Sequence[int], bound: BExpr,
                        metric: StackMetric,
                        params: Optional[Mapping[str, int]] = None,
                        fuel: int = 2_000_000) -> int:
    """Run one call and check its trace weight against a parametric bound.

    ``args`` are integer arguments; ``params`` is the valuation for the
    bound's parameters (defaults to binding the function's formal
    parameter names positionally).
    """
    clight_fn = program.function(function)
    if params is None:
        params = dict(zip(clight_fn.params, args))
    behavior, _result = run_call(program, function,
                                 [VInt(a) for a in args], fuel=fuel)
    if isinstance(behavior, GoesWrong):
        raise SoundnessViolation(
            f"{function}{tuple(args)} goes wrong ({behavior.reason})")
    observed = weight_of_trace(metric, behavior.trace)
    allowed = evaluate(bound, metric.as_dict(), dict(params))
    if observed > allowed:
        raise SoundnessViolation(
            f"{function}{tuple(args)}: weight {observed} exceeds "
            f"bound {allowed}")
    return observed
