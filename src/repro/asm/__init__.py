"""ASMsz: realistic x86-like assembly with one finite, preallocated stack.

This is the paper's key semantic change (§3.2): instead of CompCert's
idealized assembly where every function call magically allocates a fresh
stack frame, ASMsz preallocates a single contiguous stack block of
``sz + 4`` bytes and all frame manipulation is plain pointer arithmetic on
``ESP`` — no ``Pallocframe``/``Pfreeframe`` pseudo-instructions, no back
link, and **stack overflow is a real behavior**: pushing ``ESP`` below the
base of the stack block makes the machine go wrong.

Arguments are read straight from the caller's frame via ESP offsets
(``ESP + SF(f) + 4 + offset``) — the indirection-free access the paper
highlights as a side benefit of frame merging.
"""

from repro.asm.ast import AsmFunction, AsmProgram
from repro.asm.lower import asm_of_mach
from repro.asm.machine import AsmMachine, run_program

__all__ = ["AsmProgram", "AsmFunction", "asm_of_mach", "AsmMachine",
           "run_program"]
