"""Per-program Python codegen for ASMsz — the third execution tier.

Where :mod:`repro.asm.decode` lowers each instruction to one closure and
dispatches ``pc = ops[pc](pc)``, this module goes one step further: each
:class:`~repro.asm.ast.AsmProgram` is compiled *to Python source* — one
function per basic block, trampoline dispatch between blocks (the
closest Python gets to computed goto), registers and ESP in local
variables, immediates / jump targets / global addresses / return-address
byte strings constant-folded into the text — and the ``compile()``d code
object is cached per program in the same ``WeakKeyDictionary`` pattern
``decode_program`` uses.  Fuel is charged per *block* (one compare per
basic block instead of one loop iteration per instruction), and the hot
instruction pairs are fused into superinstructions:

* ``cmp`` + ``jcc`` — the comparison feeds the branch directly, and the
  flag register is materialized on the taken/untaken edge;
* ``espadd(-N)`` + ``call`` — frame allocation and the return-address
  push share a single overflow check against the final ESP (sound
  because the final ESP is the minimum of the pair), with a cold helper
  reconstructing which of the two instructions overflowed;
* ``load`` + ALU op — the loaded word feeds the ALU without a second
  dispatch.

Observable equivalence is non-negotiable: trace, output, return code,
ESP watermark, overflow point, step counts and byte-identical error
messages all match the decoded and legacy engines (the differential
suite in ``tests/unit/test_asm_codegen.py`` proves it over the catalog
and generated seeds).  Two mechanisms keep the exactness cheap:

* every cold error helper records the precise completed-step count in
  ``machine._cg_steps`` before raising, so the trampoline can settle
  ``machine.steps`` exactly as ``run_decoded`` does;
* when a block cannot run to completion on the remaining fuel — or a
  ``ret`` lands at an address that is not a compiled call-return site —
  execution *deopts*: the machine binds the decoded engine lazily and
  single-steps the tail, so every fuel-boundary and wild-return corner
  case is decided by the oracle engine itself.

``_MISCOMPILE`` is a deliberate-bug knob used by the codegen-layer fault
operators in ``testing/faults.py``: it makes the generator emit one of
three classic fusion miscompiles so the mutation matrix can prove the
differential oracles would catch a real one.
"""

from __future__ import annotations

import time
from typing import Optional
from weakref import WeakKeyDictionary

from repro import ints, obs
from repro.asm import ast as asm
from repro.asm.decode import (CODE_BASE, EAX, FREG_INDEX, FUNCTION_STRIDE,
                              GLOBAL_BASE, HALT_ADDRESS, IREG_INDEX, _F64)
from repro.c.types import align_up
from repro.errors import (DynamicError, MemoryError_, StackOverflowError_,
                          UndefinedBehaviorError)
from repro.events.trace import Behavior, Converges, Diverges, GoesWrong
from repro.memory.values import VFloat, VInt
from repro.runtime import call_external

_MASK = 0xFFFFFFFF

#: Version tag of the generated source format.  The serving layer keys
#: persisted codegen artifacts by this value: any change to ``_generate``
#: (block layout, superinstruction set, helper protocol, …) must bump it
#: so a stored artifact from an older generator is recompiled, never
#: executed.
CODEGEN_VERSION = 1

#: Deliberate-miscompile knob for the codegen-layer fault operators.
#: ``None`` (always, outside the mutation matrix) = faithful codegen;
#: the three strings make ``_generate`` emit one classic fusion bug.
#: While set, the cache is bypassed so the bug never leaks into it.
MISCOMPILES = ("swap-branch", "drop-espadjust", "stale-const")
_MISCOMPILE: Optional[str] = None


# ---------------------------------------------------------------------------
# Cold helpers (shared by all generated programs via the ``H`` dict)
# ---------------------------------------------------------------------------


def _h_overflow(m, st: int, new_esp: int):
    m._cg_steps = st
    raise StackOverflowError_(
        "stack overflow: ESP would drop "
        f"{m.stack_base - new_esp} bytes below the stack block",
        needed=m.stack_top - new_esp,
        available=m.stack_top - m.stack_base)


def _h_fused_overflow(m, st_espadd: int, e0: int):
    """Disambiguate a combined espadd+call overflow check.

    The generated fast path checked only the final ESP (``e0 - 4``).  If
    the frame allocation itself overflowed, the caller left ``m.esp`` at
    the pre-espadd value and the overflow point is ``e0``; otherwise the
    espadd committed (ESP and watermark move to ``e0``) and the return
    address push overflowed at ``e0 - 4`` — exactly the decoded engine's
    two raise sites.
    """
    if e0 < m.stack_base:
        _h_overflow(m, st_espadd, e0)
    m.esp = e0
    if e0 < m.min_esp:
        m.min_esp = e0
    _h_overflow(m, st_espadd + 1, e0 - 4)


def _h_mem(m, st: int, address: int, size: int, align_mask: int, kind: str):
    """Range-or-alignment failure for one fused memory guard."""
    m._cg_steps = st
    if address < GLOBAL_BASE or address + size > len(m.memory):
        raise MemoryError_(
            f"memory access at {address:#x} (size {size}) out of range")
    raise MemoryError_(f"misaligned {kind} at {address:#x}")


def _h_dyn(m, st: int, message: str):
    m._cg_steps = st
    raise DynamicError(message)


def _h_key(m, st: int, label):
    # Unknown jump labels escape as a bare KeyError, exactly like the
    # decoded engine's deferred decode error (never caught as a behavior).
    m._cg_steps = st
    raise KeyError(label)


def _h_ub(m, st: int, message: str):
    m._cg_steps = st
    raise UndefinedBehaviorError(message)


def _h_uint_of_float(value: float) -> int:
    # Caller pre-sets ``m._cg_steps``.  Mirrors the decoded Pcvt
    # uintoffloat op byte for byte.
    if value != value:
        raise UndefinedBehaviorError("float-to-uint of NaN")
    truncated = int(value)
    if truncated < 0 or truncated > ints.MAX_UNSIGNED:
        raise UndefinedBehaviorError(
            f"float-to-uint out of range: {value!r}")
    return truncated


def _h_check_int(result, name: str) -> int:
    if not isinstance(result, VInt):
        raise DynamicError(f"builtin {name} did not return an integer")
    return result.value


def _h_check_float(result, name: str) -> float:
    if not isinstance(result, VFloat):
        raise DynamicError(f"builtin {name} did not return a float")
    return result.value


def _h_deopt(m, st: int, fid: int, pc: int, fuel: int):
    """Leave codegen for the decoded engine at ``(fid, pc)``.

    Used for fuel tails (the next block might not fit in the remaining
    fuel) and for ``ret`` targets that are not compiled call-return
    sites.  The decoded engine is bound lazily on first deopt and runs
    the remainder of the program, so every boundary case is literally
    decided by the oracle tier.
    """
    from repro.asm import decode
    if m._bound is None:
        decode.bind_machine(m)
    _func_ops, ops_by_id = m._bound
    ops = ops_by_id[fid]
    steps = st
    try:
        while steps < fuel:
            steps += 1
            npc = ops[pc](pc)
            if npc is None:
                if m.done:
                    break
                ops = m._ops
                pc = m._pc
            else:
                pc = npc
    except BaseException:
        m._cg_steps = steps
        raise
    return None, steps


def _h_ret_slow(m, st: int, address: int, fuel: int):
    """``ret`` to an address that is not a compiled call-return site.

    Replays the decoded engine's dispatch chain (non-code address,
    unknown function id, past-the-end index) with byte-identical
    messages, then deopts into the middle of the target block.
    """
    if address < CODE_BASE:
        _h_dyn(m, st, f"return to non-code address {address:#x}")
    fid, index = divmod(address - CODE_BASE, FUNCTION_STRIDE)
    functions = list(m.program.functions)
    if fid >= len(functions):
        _h_dyn(m, st, f"return to unknown function id {fid}")
    name = functions[fid]
    if index > len(m.program.functions[name].body):
        _h_dyn(m, st, f"{name}: fell off the end of the code")
    return _h_deopt(m, st, fid, index, fuel)


_H = {
    "ovf": _h_overflow,
    "fovf": _h_fused_overflow,
    "mem": _h_mem,
    "dyn": _h_dyn,
    "key": _h_key,
    "ub": _h_ub,
    "deopt": _h_deopt,
    "ret_slow": _h_ret_slow,
    "ext": call_external,
    "vint": VInt,
    "vfloat": VFloat,
    "chk_int": _h_check_int,
    "chk_float": _h_check_float,
    "unpack": _F64.unpack_from,
    "pack": _F64.pack_into,
    "divs": ints.div_s,
    "divu": ints.div_u,
    "mods": ints.mod_s,
    "modu": ints.mod_u,
    "ioffs": ints.of_float_signed,
    "uoffs": _h_uint_of_float,
}


# ---------------------------------------------------------------------------
# Source generation
# ---------------------------------------------------------------------------


#: Two-address integer ALU templates ({d}/{s} are local register names).
#: Signed compares use the sign-bit flip so no to_signed call survives
#: into the hot path; division/modulo stay on the checked ints table.
_BINOP_STMT = {
    "add": "{d} = ({d} + {s}) & 4294967295",
    "sub": "{d} = ({d} - {s}) & 4294967295",
    "mul": "{d} = ({d} * {s}) & 4294967295",
    "and": "{d} = {d} & {s}",
    "or": "{d} = {d} | {s}",
    "xor": "{d} = {d} ^ {s}",
    "shl": "{d} = ({d} << ({s} & 31)) & 4294967295",
    "shru": "{d} = {d} >> ({s} & 31)",
    "shrs": ("{d} = (({d} - 4294967296 if {d} >= 2147483648 else {d})"
             " >> ({s} & 31)) & 4294967295"),
}

#: Compare ops as raw boolean expressions (for fused cmp+jcc and for the
#: flag-materializing standalone form).
_CMP_EXPR = {
    "cmp_eq": "{d} == {s}",
    "cmp_ne": "{d} != {s}",
    "cmp_ltu": "{d} < {s}",
    "cmp_leu": "{d} <= {s}",
    "cmp_gtu": "{d} > {s}",
    "cmp_geu": "{d} >= {s}",
    "cmp_lts": "({d} ^ 2147483648) < ({s} ^ 2147483648)",
    "cmp_les": "({d} ^ 2147483648) <= ({s} ^ 2147483648)",
    "cmp_gts": "({d} ^ 2147483648) > ({s} ^ 2147483648)",
    "cmp_ges": "({d} ^ 2147483648) >= ({s} ^ 2147483648)",
}

_FCMP_OP = {"cmpf_eq": "==", "cmpf_ne": "!=", "cmpf_lt": "<",
            "cmpf_le": "<=", "cmpf_gt": ">", "cmpf_ge": ">="}

_CAST_STMTS = {
    "neg": ["{r} = (-{r}) & 4294967295"],
    "notint": ["{r} = (~{r}) & 4294967295"],
    "notbool": ["{r} = 0 if {r} else 1"],
    "cast8signed": ["_t = {r} & 255",
                    "{r} = _t | 4294967040 if _t & 128 else _t"],
    "cast8unsigned": ["{r} = {r} & 255"],
    "cast16signed": ["_t = {r} & 65535",
                     "{r} = _t | 4294901760 if _t & 32768 else _t"],
    "cast16unsigned": ["{r} = {r} & 65535"],
}

#: Binops safe to fuse behind a load (no table call, cannot raise).
_FUSABLE_AFTER_LOAD = set(_BINOP_STMT) | set(_CMP_EXPR)


def _global_layout(program: asm.AsmProgram) -> dict[str, int]:
    """Global addresses, machine-independent (mirrors AsmMachine.__init__)."""
    layout: dict[str, int] = {}
    address = GLOBAL_BASE
    for var in program.globals:
        address = align_up(address, max(var.alignment, 1))
        layout[var.name] = address
        address += var.size
    return layout


class _Writer:
    __slots__ = ("lines",)

    def __init__(self) -> None:
        self.lines: list[str] = []

    def line(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


def _instr_effects(ins: asm.PInstr, glb: dict[str, int]):
    """(int reads, int writes, float reads, float writes, reads esp,
    writes esp) for one instruction — drives the load/spill discipline."""
    ri: set[int] = set()
    wi: set[int] = set()
    rf: set[int] = set()
    wf: set[int] = set()
    resp = False
    wesp = False

    def addr(a: asm.Addr) -> None:
        nonlocal resp
        if isinstance(a, asm.AStack):
            resp = True
        elif isinstance(a, asm.ABase):
            ri.add(IREG_INDEX[a.reg])

    if isinstance(ins, asm.Pmovimm):
        wi.add(IREG_INDEX[ins.dest])
    elif isinstance(ins, asm.Pmovfimm):
        wf.add(FREG_INDEX[ins.dest])
    elif isinstance(ins, asm.Pmov):
        ri.add(IREG_INDEX[ins.src])
        wi.add(IREG_INDEX[ins.dest])
    elif isinstance(ins, asm.Pmovf):
        rf.add(FREG_INDEX[ins.src])
        wf.add(FREG_INDEX[ins.dest])
    elif isinstance(ins, asm.Plea):
        addr(ins.addr)
        wi.add(IREG_INDEX[ins.dest])
    elif isinstance(ins, asm.Punop):
        ri.add(IREG_INDEX[ins.reg])
        wi.add(IREG_INDEX[ins.reg])
    elif isinstance(ins, asm.Pfneg):
        rf.add(FREG_INDEX[ins.reg])
        wf.add(FREG_INDEX[ins.reg])
    elif isinstance(ins, asm.Pcvt):
        if ins.op in ("intoffloat", "uintoffloat"):
            rf.add(FREG_INDEX[ins.src])
            wi.add(IREG_INDEX[ins.dest])
        elif ins.op in ("floatofint", "floatofuint"):
            ri.add(IREG_INDEX[ins.src])
            wf.add(FREG_INDEX[ins.dest])
    elif isinstance(ins, asm.Pbinop):
        ri.add(IREG_INDEX[ins.dest])
        ri.add(IREG_INDEX[ins.src])
        wi.add(IREG_INDEX[ins.dest])
    elif isinstance(ins, asm.Pbinopf):
        rf.add(FREG_INDEX[ins.dest])
        rf.add(FREG_INDEX[ins.src])
        wf.add(FREG_INDEX[ins.dest])
    elif isinstance(ins, asm.Pcmpf):
        rf.add(FREG_INDEX[ins.src1])
        rf.add(FREG_INDEX[ins.src2])
        wi.add(IREG_INDEX[ins.dest])
    elif isinstance(ins, asm.Pload):
        addr(ins.addr)
        if ins.chunk.is_float:
            wf.add(FREG_INDEX[ins.dest])
        else:
            wi.add(IREG_INDEX[ins.dest])
    elif isinstance(ins, asm.Pstore):
        addr(ins.addr)
        if ins.chunk.is_float:
            rf.add(FREG_INDEX[ins.src])
        else:
            ri.add(IREG_INDEX[ins.src])
    elif isinstance(ins, asm.Pespadd):
        resp = True
        wesp = True
    elif isinstance(ins, asm.Pjcc):
        ri.add(IREG_INDEX[ins.reg])
    elif isinstance(ins, asm.Pcall):
        resp = True
        wesp = True
    elif isinstance(ins, asm.Pret):
        resp = True
        wesp = True
    elif isinstance(ins, asm.Pbuiltin):
        for reg, is_float in zip(ins.args, ins.arg_is_float):
            (rf if is_float else ri).add(
                FREG_INDEX[reg] if is_float else IREG_INDEX[reg])
        if ins.dest is not None:
            if ins.dest_is_float:
                wf.add(FREG_INDEX[ins.dest])
            else:
                wi.add(IREG_INDEX[ins.dest])
    return ri, wi, rf, wf, resp, wesp


def _addr_expr(a: asm.Addr, glb: dict[str, int]):
    """(expression, deferred-error-stmt-or-None) for one address."""
    if isinstance(a, asm.AStack):
        return f"esp + {a.offset}", None
    if isinstance(a, asm.ABase):
        reg = IREG_INDEX[a.reg]
        return f"(r{reg} + {a.offset}) & 4294967295", None
    if isinstance(a, asm.AGlobal):
        base = glb.get(a.symbol)
        if base is None:
            msg = f"unknown symbol {a.symbol!r}"
            return None, ("ub", msg)
        return repr(base + a.offset), None
    return None, ("dyn", f"unknown addressing mode {a!r}")


def _float_literal(value: float) -> str:
    if value != value or value in (float("inf"), float("-inf")):
        return f'float("{value!r}")'
    return repr(value)


class _BlockEmitter:
    """Emits one basic block ``[start, end)`` of one function."""

    def __init__(self, w: _Writer, fid: int, fn: asm.AsmFunction,
                 start: int, end: int, glb: dict[str, int],
                 fids: dict[str, int], body_len: int,
                 miscompile: Optional[str]) -> None:
        self.w = w
        self.fid = fid
        self.fn = fn
        self.start = start
        self.end = end
        self.glb = glb
        self.fids = fids
        self.body_len = body_len
        self.miscompile = miscompile
        self.instrs = fn.body[start:end]
        self.K = end - start
        # Effect analysis: which registers live in locals, which need
        # loading on entry (read before first write) and spilling on exit.
        ri_first: set[int] = set()
        rf_first: set[int] = set()
        wi: set[int] = set()
        wf: set[int] = set()
        resp = wesp = False
        for ins in self.instrs:
            ri, iwi, rf, iwf, iresp, iwesp = _instr_effects(ins, glb)
            ri_first |= (ri - wi)
            rf_first |= (rf - wf)
            wi |= iwi
            wf |= iwf
            resp |= iresp
            wesp |= iwesp
        self.ri_first, self.rf_first = ri_first, rf_first
        self.wi, self.wf = wi, wf
        self.uses_esp = resp or wesp
        self.wesp = wesp

    # -- helpers ------------------------------------------------------------

    def _spill_lines(self) -> list[str]:
        lines = [f"ir[{i}] = r{i}" for i in sorted(self.wi)]
        lines += [f"fr[{i}] = f{i}" for i in sorted(self.wf)]
        if self.wesp:
            lines.append("m.esp = esp")
        return lines

    def _raise_stmt(self, ind: int, call: str) -> None:
        # Cold path: commit ESP (registers are never observable through a
        # behavior, but the watermark and deopt need ESP exact) and call a
        # helper that records the step count and raises.
        if self.wesp:
            self.w.line(ind, "m.esp = esp")
        self.w.line(ind, call)

    def _step(self, j: int) -> str:
        """Completed-step expression when the instruction at block offset
        ``j`` raises (the raising instruction counts, as in run_decoded)."""
        return f"st + {j + 1}"

    def _deopt(self, target_pc: int) -> str:
        return f"return deopt(m, st, {self.fid}, {target_pc}, fuel)"

    # -- per-instruction statement emission ---------------------------------

    def _emit_mem_guard(self, ind: int, addr_var: str, size: int,
                        align_mask: int, kind: str, j: int) -> None:
        terms = [f"{addr_var} < 4096", f"{addr_var} + {size} > memlen"]
        if align_mask:
            terms.append(f"{addr_var} & {align_mask}")
        self.w.line(ind, f"if {' or '.join(terms)}:")
        self._raise_stmt(
            ind + 1,
            f"memerr(m, {self._step(j)}, {addr_var}, {size}, "
            f"{align_mask}, {kind!r})")

    def _emit_load(self, ind: int, ins: asm.Pload, j: int) -> None:
        expr, err = _addr_expr(ins.addr, self.glb)
        if err is not None:
            self._raise_stmt(ind, f"{err[0]}(m, {self._step(j)}, {err[1]!r})")
            return
        chunk = ins.chunk
        self.w.line(ind, f"_a = {expr}")
        if chunk.is_float:
            self._emit_mem_guard(ind, "_a", 8, 3, "load", j)
            self.w.line(ind, f"f{FREG_INDEX[ins.dest]} = unpack(mem, _a)[0]")
            return
        d = IREG_INDEX[ins.dest]
        size = chunk.size
        if size == 4:
            self._emit_mem_guard(ind, "_a", 4, 3, "load", j)
            self.w.line(ind, f'r{d} = fb(mem[_a:_a + 4], "little")')
            return
        signed = chunk.value.endswith("s")
        self._emit_mem_guard(ind, "_a", size, chunk.alignment - 1, "load", j)
        if size == 1:
            self.w.line(ind, "_t = mem[_a]")
            if signed:
                self.w.line(ind, f"r{d} = _t | 4294967040 if _t & 128 else _t")
            else:
                self.w.line(ind, f"r{d} = _t")
        else:
            self.w.line(ind, '_t = fb(mem[_a:_a + 2], "little")')
            if signed:
                self.w.line(
                    ind, f"r{d} = _t | 4294901760 if _t & 32768 else _t")
            else:
                self.w.line(ind, f"r{d} = _t")

    def _emit_store(self, ind: int, ins: asm.Pstore, j: int) -> None:
        expr, err = _addr_expr(ins.addr, self.glb)
        if err is not None:
            self._raise_stmt(ind, f"{err[0]}(m, {self._step(j)}, {err[1]!r})")
            return
        chunk = ins.chunk
        self.w.line(ind, f"_a = {expr}")
        if chunk.is_float:
            self._emit_mem_guard(ind, "_a", 8, 3, "store", j)
            self.w.line(
                ind, f"pack(mem, _a, float(f{FREG_INDEX[ins.src]}))")
            return
        s = IREG_INDEX[ins.src]
        size = chunk.size
        if size == 4:
            self._emit_mem_guard(ind, "_a", 4, 3, "store", j)
            self.w.line(
                ind,
                f'mem[_a:_a + 4] = (r{s} & 4294967295).to_bytes(4, "little")')
            return
        byte_mask = (1 << (8 * size)) - 1
        self._emit_mem_guard(ind, "_a", size, chunk.alignment - 1, "store", j)
        self.w.line(
            ind,
            f"mem[_a:_a + {size}] = "
            f'(r{s} & {byte_mask}).to_bytes({size}, "little")')

    def _emit_espadd(self, ind: int, ins: asm.Pespadd, j: int) -> None:
        delta = ins.delta
        if delta >= 0:
            self.w.line(ind, f"esp = esp + {delta}")
            return
        self.w.line(ind, f"_e = esp - {-delta}")
        self.w.line(ind, "if _e < base:")
        self._raise_stmt(ind + 1, f"ovf(m, {self._step(j)}, _e)")
        self.w.line(ind, "esp = _e")
        self.w.line(ind, "if esp < m.min_esp:")
        self.w.line(ind + 1, "m.min_esp = esp")

    def _emit_builtin(self, ind: int, ins: asm.Pbuiltin, j: int) -> None:
        args = []
        for reg, is_float in zip(ins.args, ins.arg_is_float):
            if is_float:
                args.append(f"VF(f{FREG_INDEX[reg]})")
            else:
                args.append(f"VI(r{IREG_INDEX[reg]})")
        self.w.line(ind, f"m._cg_steps = {self._step(j)}")
        self.w.line(
            ind,
            f"_res, _ev = ext({ins.name!r}, [{', '.join(args)}], "
            "alloc=malloc, output=m.output)")
        if ins.dest is not None:
            if ins.dest_is_float:
                self.w.line(
                    ind,
                    f"f{FREG_INDEX[ins.dest]} = ckf(_res, {ins.name!r})")
            else:
                self.w.line(
                    ind,
                    f"r{IREG_INDEX[ins.dest]} = cki(_res, {ins.name!r})")
        self.w.line(ind, "if _ev is not None:")
        self.w.line(ind + 1, "tr.append(_ev)")

    def _emit_straight(self, ind: int, ins: asm.PInstr, j: int) -> None:
        """One non-control instruction at block offset ``j``."""
        w, step = self.w, self._step(j)
        if isinstance(ins, asm.Plabel):
            return
        if isinstance(ins, asm.Pmovimm):
            w.line(ind, f"r{IREG_INDEX[ins.dest]} = {ints.wrap(ins.value)}")
            return
        if isinstance(ins, asm.Pmovfimm):
            w.line(ind,
                   f"f{FREG_INDEX[ins.dest]} = {_float_literal(ins.value)}")
            return
        if isinstance(ins, asm.Pmov):
            w.line(ind,
                   f"r{IREG_INDEX[ins.dest]} = r{IREG_INDEX[ins.src]}")
            return
        if isinstance(ins, asm.Pmovf):
            w.line(ind,
                   f"f{FREG_INDEX[ins.dest]} = f{FREG_INDEX[ins.src]}")
            return
        if isinstance(ins, asm.Plea):
            expr, err = _addr_expr(ins.addr, self.glb)
            if err is not None:
                self._raise_stmt(ind, f"{err[0]}(m, {step}, {err[1]!r})")
                return
            w.line(ind,
                   f"r{IREG_INDEX[ins.dest]} = ({expr}) & 4294967295")
            return
        if isinstance(ins, asm.Punop):
            stmts = _CAST_STMTS.get(ins.op)
            if stmts is None:
                self._raise_stmt(
                    ind,
                    f"dyn(m, {step}, {f'unknown unary op {ins.op!r}'!r})")
                return
            r = f"r{IREG_INDEX[ins.reg]}"
            for stmt in stmts:
                w.line(ind, stmt.format(r=r))
            return
        if isinstance(ins, asm.Pfneg):
            r = FREG_INDEX[ins.reg]
            w.line(ind, f"f{r} = -f{r}")
            return
        if isinstance(ins, asm.Pcvt):
            self._emit_cvt(ind, ins, j)
            return
        if isinstance(ins, asm.Pbinop):
            self._emit_binop(ind, ins, j, src_expr=None)
            return
        if isinstance(ins, asm.Pbinopf):
            self._emit_binopf(ind, ins, j)
            return
        if isinstance(ins, asm.Pcmpf):
            op = _FCMP_OP.get(ins.op)
            if op is None:
                self._raise_stmt(
                    ind, f"dyn(m, {step}, "
                    f"{f'unknown float compare {ins.op!r}'!r})")
                return
            d = IREG_INDEX[ins.dest]
            a, b = FREG_INDEX[ins.src1], FREG_INDEX[ins.src2]
            w.line(ind, f"r{d} = 1 if f{a} {op} f{b} else 0")
            return
        if isinstance(ins, asm.Pload):
            self._emit_load(ind, ins, j)
            return
        if isinstance(ins, asm.Pstore):
            self._emit_store(ind, ins, j)
            return
        if isinstance(ins, asm.Pespadd):
            self._emit_espadd(ind, ins, j)
            return
        if isinstance(ins, asm.Pbuiltin):
            self._emit_builtin(ind, ins, j)
            return
        self._raise_stmt(
            ind, f"dyn(m, {step}, {f'unknown instruction {ins!r}'!r})")

    def _emit_cvt(self, ind: int, ins: asm.Pcvt, j: int) -> None:
        w, step = self.w, self._step(j)
        if ins.op == "intoffloat":
            w.line(ind, f"m._cg_steps = {step}")
            w.line(ind, f"r{IREG_INDEX[ins.dest]} = "
                        f"ioffs(f{FREG_INDEX[ins.src]})")
            return
        if ins.op == "uintoffloat":
            w.line(ind, f"m._cg_steps = {step}")
            w.line(ind, f"r{IREG_INDEX[ins.dest]} = "
                        f"uoffs(f{FREG_INDEX[ins.src]})")
            return
        if ins.op == "floatofint":
            s = IREG_INDEX[ins.src]
            w.line(ind, f"f{FREG_INDEX[ins.dest]} = float("
                        f"r{s} - 4294967296 if r{s} > 2147483647 else r{s})")
            return
        if ins.op == "floatofuint":
            w.line(ind,
                   f"f{FREG_INDEX[ins.dest]} = float(r{IREG_INDEX[ins.src]})")
            return
        self._raise_stmt(
            ind, f"dyn(m, {step}, {f'unknown conversion {ins.op!r}'!r})")

    def _emit_binop(self, ind: int, ins: asm.Pbinop, j: int,
                    src_expr: Optional[str]) -> None:
        """Integer ALU op; ``src_expr`` overrides the source operand (used
        by the fused load+op superinstruction)."""
        w = self.w
        d = f"r{IREG_INDEX[ins.dest]}"
        s = src_expr if src_expr is not None else f"r{IREG_INDEX[ins.src]}"
        stmt = _BINOP_STMT.get(ins.op)
        if stmt is not None:
            w.line(ind, stmt.format(d=d, s=s))
            return
        cond = _CMP_EXPR.get(ins.op)
        if cond is not None:
            w.line(ind, f"{d} = 1 if {cond.format(d=d, s=s)} else 0")
            return
        if ins.op in ("divs", "divu", "mods", "modu"):
            w.line(ind, f"m._cg_steps = {self._step(j)}")
            w.line(ind, f"{d} = {ins.op}({d}, {s})")
            return
        self._raise_stmt(
            ind, f"dyn(m, {self._step(j)}, "
            f"{f'unknown integer op {ins.op!r}'!r})")

    def _emit_binopf(self, ind: int, ins: asm.Pbinopf, j: int) -> None:
        w = self.w
        d, s = FREG_INDEX[ins.dest], FREG_INDEX[ins.src]
        if ins.op == "addf":
            w.line(ind, f"f{d} = f{d} + f{s}")
        elif ins.op == "subf":
            w.line(ind, f"f{d} = f{d} - f{s}")
        elif ins.op == "mulf":
            w.line(ind, f"f{d} = f{d} * f{s}")
        elif ins.op == "divf":
            w.line(ind, f"_x = f{d}")
            w.line(ind, f"_y = f{s}")
            w.line(ind, "if _y == 0.0:")
            w.line(ind + 1, "if _x == 0.0 or _x != _x:")
            w.line(ind + 2, f"f{d} = _NAN")
            w.line(ind + 1, "else:")
            w.line(ind + 2, f"f{d} = _INF if (_x > 0) == (_y >= 0) else _NINF")
            w.line(ind, "else:")
            w.line(ind + 1, f"f{d} = _x / _y")
        else:
            self._raise_stmt(
                ind, f"dyn(m, {self._step(j)}, "
                f"{f'unknown float op {ins.op!r}'!r})")

    def _emit_fused_load_op(self, ind: int, load: asm.Pload,
                            binop: asm.Pbinop, j: int) -> None:
        """Superinstruction: aligned word load feeding an ALU op."""
        expr, _err = _addr_expr(load.addr, self.glb)
        d = IREG_INDEX[load.dest]
        self.w.line(ind, f"_a = {expr}")
        self._emit_mem_guard(ind, "_a", 4, 3, "load", j)
        self.w.line(ind, f'r{d} = fb(mem[_a:_a + 4], "little")')
        if self.miscompile == "stale-const":
            # Classic fusion bug: the folded operand goes stale — the ALU
            # consumes a constant instead of the freshly loaded word.
            self._emit_binop(ind, binop, j + 1, src_expr="0")
        else:
            self._emit_binop(ind, binop, j + 1, src_expr=f"r{d}")

    # -- terminators --------------------------------------------------------

    def _emit_call(self, ind: int, ins: asm.Pcall, j: int,
                   fused_espadd: Optional[asm.Pespadd]) -> None:
        fid_target = self.fids.get(ins.symbol)
        pc = self.start + j
        if fid_target is None:
            msg = (f"call to unknown symbol {ins.symbol!r} "
                   "(externals use builtins)")
            self._raise_stmt(ind, f"dyn(m, {self._step(j)}, {msg!r})")
            return
        ra = CODE_BASE + self.fid * FUNCTION_STRIDE + (pc + 1)
        ra_bytes = ra.to_bytes(4, "little")
        w = self.w
        if fused_espadd is not None:
            drop = -fused_espadd.delta
            if self.miscompile == "drop-espadjust":
                # Classic fusion bug: the frame allocation folded into the
                # push disappears — the callee runs in the caller's frame.
                w.line(ind, "_e0 = esp")
            else:
                w.line(ind, f"_e0 = esp - {drop}")
            w.line(ind, "_e = _e0 - 4")
            w.line(ind, "if _e < base:")
            w.line(ind + 1, "m.esp = esp")
            w.line(ind + 1, f"fovf(m, {self._step(j - 1)}, _e0)")
        else:
            w.line(ind, "_e = esp - 4")
            w.line(ind, "if _e < base:")
            w.line(ind + 1, "m.esp = esp")
            w.line(ind + 1, f"ovf(m, {self._step(j)}, _e)")
        w.line(ind, "esp = _e")
        w.line(ind, "if esp < m.min_esp:")
        w.line(ind + 1, "m.min_esp = esp")
        w.line(ind, "if esp + 4 > memlen or esp & 3:")
        w.line(ind + 1, "m.esp = esp")
        w.line(ind + 1,
               f"memerr(m, {self._step(j)}, esp, 4, 3, 'store')")
        w.line(ind, f"mem[esp:esp + 4] = {ra_bytes!r}")
        for stmt in self._spill_lines():
            w.line(ind, stmt)
        if not self.wesp:  # unreachable (calls write esp) — safety net
            w.line(ind, "m.esp = esp")
        w.line(ind, f"return B{fid_target}_0, st + {self.K}")

    def _emit_ret(self, ind: int, j: int) -> None:
        w = self.w
        w.line(ind, "if esp < 4096 or esp + 4 > memlen or esp & 3:")
        self._raise_stmt(
            ind + 1, f"memerr(m, {self._step(j)}, esp, 4, 3, 'load')")
        w.line(ind, '_ra = fb(mem[esp:esp + 4], "little")')
        w.line(ind, "esp = esp + 4")
        for stmt in self._spill_lines():
            w.line(ind, stmt)
        w.line(ind, f"if _ra == {HALT_ADDRESS}:")
        w.line(ind + 1, "m.done = True")
        w.line(ind + 1, f"_v = ir[{EAX}]")
        w.line(ind + 1,
               "m.return_code = _v - 4294967296 if _v > 2147483647 else _v")
        w.line(ind + 1, f"return None, st + {self.K}")
        w.line(ind, "_t = RETMAP.get(_ra)")
        w.line(ind, "if _t is None:")
        w.line(ind + 1, f"return retslow(m, st + {self.K}, _ra, fuel)")
        w.line(ind, f"return _t, st + {self.K}")

    # -- whole-block emission ------------------------------------------------

    def emit(self) -> None:
        w = self.w
        fid, start, end, K = self.fid, self.start, self.end, self.K
        instrs = self.instrs
        last = instrs[-1]

        # Terminal-fusion analysis.
        fused_cmp = None            # Pbinop/Pcmpf feeding a fused jcc
        fused_espadd = None         # Pespadd folded into a call
        jcc_target = None
        self_loop = False
        if isinstance(last, asm.Pjcc):
            jcc_target = self.fn.labels.get(last.label)
            if jcc_target is not None:
                self_loop = jcc_target == start
                if len(instrs) >= 2:
                    prev = instrs[-2]
                    if isinstance(prev, asm.Pbinop) \
                            and prev.op in _CMP_EXPR \
                            and IREG_INDEX[prev.dest] == IREG_INDEX[last.reg]:
                        fused_cmp = prev
                    elif isinstance(prev, asm.Pcmpf) \
                            and _FCMP_OP.get(prev.op) is not None \
                            and IREG_INDEX[prev.dest] == IREG_INDEX[last.reg]:
                        fused_cmp = prev
        elif isinstance(last, asm.Pjmp):
            target = self.fn.labels.get(last.label)
            self_loop = target == start
        elif isinstance(last, asm.Pcall) and len(instrs) >= 2 \
                and self.fids.get(last.symbol) is not None:
            prev = instrs[-2]
            if isinstance(prev, asm.Pespadd) and prev.delta < 0:
                fused_espadd = prev

        # Straight-line body: everything before the terminator, minus any
        # instruction consumed by a terminal fusion; plus load+op pairs.
        n_straight = len(instrs) - 1
        if isinstance(last, (asm.Pjmp, asm.Pjcc, asm.Pcall, asm.Pret)):
            if fused_cmp is not None or fused_espadd is not None:
                n_straight -= 1
        else:
            n_straight = len(instrs)  # fallthrough block

        w.line(1, f"def B{fid}_{start}(st):")
        w.line(2, f"if st + {K} > fuel:")
        w.line(3, self._deopt(start))
        for i in sorted(self.ri_first):
            w.line(2, f"r{i} = ir[{i}]")
        for i in sorted(self.rf_first):
            w.line(2, f"f{i} = fr[{i}]")
        if self.uses_esp:
            w.line(2, "esp = m.esp")

        body_ind = 3 if self_loop else 2
        if self_loop:
            w.line(2, "while True:")

        j = 0
        while j < n_straight:
            ins = instrs[j]
            nxt = instrs[j + 1] if j + 1 < n_straight else None
            if isinstance(ins, asm.Pload) and not ins.chunk.is_float \
                    and ins.chunk.size == 4 \
                    and _addr_expr(ins.addr, self.glb)[1] is None \
                    and isinstance(nxt, asm.Pbinop) \
                    and nxt.op in _FUSABLE_AFTER_LOAD \
                    and IREG_INDEX[nxt.src] == IREG_INDEX[ins.dest]:
                self._emit_fused_load_op(body_ind, ins, nxt, j)
                j += 2
                continue
            self._emit_straight(body_ind, ins, j)
            j += 1

        spills = self._spill_lines()

        if self_loop:
            w.line(3, f"st += {K}")
            if isinstance(last, asm.Pjmp):
                w.line(3, f"if st + {K} > fuel:")
                for stmt in spills:
                    w.line(4, stmt)
                w.line(4, self._deopt(start))
                return  # while True re-enters; no fallthrough exists
            # Conditional self-loop.
            if fused_cmp is not None:
                cond = self._fused_cond(fused_cmp)
                flag = IREG_INDEX[fused_cmp.dest]
                if self.miscompile == "swap-branch":
                    cond = f"not ({cond})"
                w.line(3, f"if {cond}:")
                w.line(4, f"r{flag} = 1")
                w.line(4, f"if st + {K} > fuel:")
                for stmt in spills:
                    w.line(5, stmt)
                w.line(5, self._deopt(start))
                w.line(4, "continue")
                w.line(3, f"r{flag} = 0")
                w.line(3, "break")
            else:
                w.line(3, f"if r{IREG_INDEX[last.reg]}:")
                w.line(4, f"if st + {K} > fuel:")
                for stmt in spills:
                    w.line(5, stmt)
                w.line(5, self._deopt(start))
                w.line(4, "continue")
                w.line(3, "break")
            for stmt in spills:
                w.line(2, stmt)
            w.line(2, f"return B{fid}_{end}, st")
            return

        # Non-loop terminators.
        if isinstance(last, asm.Pret):
            self._emit_ret(2, len(instrs) - 1)
            return
        if isinstance(last, asm.Pcall):
            self._emit_call(2, last, len(instrs) - 1, fused_espadd)
            return
        if isinstance(last, asm.Pjmp):
            target = self.fn.labels.get(last.label)
            if target is None:
                self._raise_stmt(
                    2, f"key(m, st + {K}, {last.label!r})")
                return
            for stmt in spills:
                w.line(2, stmt)
            w.line(2, f"return B{fid}_{target}, st + {K}")
            return
        if isinstance(last, asm.Pjcc):
            if jcc_target is None:
                self._raise_stmt(
                    2, f"key(m, st + {K}, {last.label!r})")
                return
            taken = f"B{fid}_{jcc_target}"
            fall = f"B{fid}_{end}"
            if fused_cmp is not None:
                cond = self._fused_cond(fused_cmp)
                flag = IREG_INDEX[fused_cmp.dest]
                if self.miscompile == "swap-branch":
                    # Classic fusion bug: the branch polarity flips when
                    # the compare is folded into the jump.
                    cond = f"not ({cond})"
                w.line(2, f"if {cond}:")
                w.line(3, f"r{flag} = 1")
                for stmt in spills:
                    w.line(3, stmt)
                w.line(3, f"return {taken}, st + {K}")
                w.line(2, f"r{flag} = 0")
                for stmt in spills:
                    w.line(2, stmt)
                w.line(2, f"return {fall}, st + {K}")
                return
            for stmt in spills:
                w.line(2, stmt)
            w.line(2, f"if r{IREG_INDEX[last.reg]}:")
            w.line(3, f"return {taken}, st + {K}")
            w.line(2, f"return {fall}, st + {K}")
            return
        # Fallthrough into the next leader.
        for stmt in spills:
            w.line(2, stmt)
        w.line(2, f"return B{fid}_{end}, st + {K}")

    def _fused_cond(self, cmp) -> str:
        if isinstance(cmp, asm.Pcmpf):
            a, b = FREG_INDEX[cmp.src1], FREG_INDEX[cmp.src2]
            return f"f{a} {_FCMP_OP[cmp.op]} f{b}"
        d = f"r{IREG_INDEX[cmp.dest]}"
        s = f"r{IREG_INDEX[cmp.src]}"
        return _CMP_EXPR[cmp.op].format(d=d, s=s)


def _generate(program: asm.AsmProgram,
              miscompile: Optional[str] = None) -> str:
    """The per-program Python source: ``bind(m, fuel, H) -> entry block``."""
    glb = _global_layout(program)
    names = list(program.functions)
    fids = {name: i for i, name in enumerate(names)}
    w = _Writer()
    w.line(0, "def bind(m, fuel, H):")
    w.line(1, "ir = m.iregs.array")
    w.line(1, "fr = m.fregs.array")
    w.line(1, "mem = m.memory")
    w.line(1, "memlen = len(mem)")
    w.line(1, "base = m.stack_base")
    w.line(1, "tr = m._trace")
    w.line(1, "malloc = m._malloc")
    w.line(1, "fb = int.from_bytes")
    w.line(1, 'ovf = H["ovf"]; fovf = H["fovf"]; memerr = H["mem"]')
    w.line(1, 'dyn = H["dyn"]; key = H["key"]; ub = H["ub"]')
    w.line(1, 'deopt = H["deopt"]; retslow = H["ret_slow"]')
    w.line(1, 'ext = H["ext"]; VI = H["vint"]; VF = H["vfloat"]')
    w.line(1, 'cki = H["chk_int"]; ckf = H["chk_float"]')
    w.line(1, 'unpack = H["unpack"]; pack = H["pack"]')
    w.line(1, 'divs = H["divs"]; divu = H["divu"]')
    w.line(1, 'mods = H["mods"]; modu = H["modu"]')
    w.line(1, 'ioffs = H["ioffs"]; uoffs = H["uoffs"]')
    w.line(1, '_NAN = float("nan"); _INF = float("inf")')
    w.line(1, '_NINF = float("-inf")')

    retmap: list[tuple[int, str]] = []
    for fid, name in enumerate(names):
        fn = program.functions[name]
        body = fn.body
        n = len(body)
        leaders = {0, n}
        leaders.update(fn.labels.values())
        for pc, ins in enumerate(body):
            if isinstance(ins, (asm.Pjmp, asm.Pjcc, asm.Pcall, asm.Pret)):
                leaders.add(pc + 1)
            if isinstance(ins, asm.Pcall):
                ra = CODE_BASE + fid * FUNCTION_STRIDE + (pc + 1)
                retmap.append((ra, f"B{fid}_{pc + 1}"))
        order = sorted(leaders)
        for i, start in enumerate(order):
            if start == n:
                break
            _BlockEmitter(w, fid, fn, start, order[i + 1], glb, fids, n,
                          miscompile).emit()
        # Past-the-end sentinel (one step, then the legacy fell-off error).
        w.line(1, f"def B{fid}_{n}(st):")
        w.line(2, "if st + 1 > fuel:")
        w.line(3, f"return deopt(m, st, {fid}, {n}, fuel)")
        msg = f"{name}: fell off the end of the code"
        w.line(2, f"return dyn(m, st + 1, {msg!r})")

    w.line(1, "RETMAP = {")
    for address, block in retmap:
        w.line(2, f"{address}: {block},")
    w.line(1, "}")
    main_fid = fids.get(program.main)
    if main_fid is None:
        w.line(1, "return None")  # start() raises "no main function" first
    else:
        w.line(1, f"return B{main_fid}_0")
    return w.source()


# ---------------------------------------------------------------------------
# Compile cache + the trampoline
# ---------------------------------------------------------------------------


class CompiledAsm:
    """One program's generated source and its exec'd ``bind`` callable."""

    __slots__ = ("source", "bind")

    def __init__(self, source: str, bind) -> None:
        self.source = source
        self.bind = bind


_CODEGEN_CACHE: "WeakKeyDictionary[asm.AsmProgram, CompiledAsm]" = \
    WeakKeyDictionary()


def _compile(program: asm.AsmProgram,
             miscompile: Optional[str]) -> CompiledAsm:
    source = _generate(program, miscompile)
    namespace: dict = {}
    exec(compile(source, "<codegen:asm>", "exec"), namespace)
    return CompiledAsm(source, namespace["bind"])


def codegen_program(program: asm.AsmProgram) -> CompiledAsm:
    """Generate + compile ``program`` (cached: once per program object)."""
    if _MISCOMPILE is not None:
        # Fault-injection mode: never serve or populate the cache.
        return _compile(program, _MISCOMPILE)
    compiled = _CODEGEN_CACHE.get(program)
    if compiled is not None:
        if obs.enabled:
            obs.add("codegen.asm.cache.hits")
        return compiled
    if obs.enabled:
        obs.add("codegen.asm.cache.misses")
        started = time.perf_counter()
        with obs.span("codegen.asm"):
            compiled = _compile(program, None)
        obs.observe("codegen.compile_seconds",
                    time.perf_counter() - started)
    else:
        compiled = _compile(program, None)
    _CODEGEN_CACHE[program] = compiled
    return compiled


def codegen_source(program: asm.AsmProgram) -> str:
    """The generated Python source (CI dumps this next to a shrunk .c)."""
    return codegen_program(program).source


def cached_program(program: asm.AsmProgram) -> Optional[CompiledAsm]:
    """Peek the per-program cache without counting a hit or compiling.

    The serving layer's seam: a warm probe asks "is the code object
    already live?" before deciding between the persisted-source path and
    a full regeneration.  Returns ``None`` while the fault-injection
    knob is set (the cache is bypassed in that mode).
    """
    if _MISCOMPILE is not None:
        return None
    return _CODEGEN_CACHE.get(program)


def install_source(program: asm.AsmProgram, source: str) -> CompiledAsm:
    """Compile previously generated source for ``program`` and cache it.

    The persistent-artifact fast path: ``compile()`` + ``exec`` of a
    stored generator output, skipping ``_generate`` entirely.  Sound
    only when ``source`` was generated for a program compiled from the
    same (source text, compiler options) under the same
    :data:`CODEGEN_VERSION` — the serving store's key guarantees
    exactly that, and the backend pipeline is deterministic.  Raises
    ``ValueError`` when the text does not load as a codegen module; the
    caller treats that as a poisoned artifact and regenerates.
    """
    if _MISCOMPILE is not None:
        raise ValueError(
            "codegen fault injection is active; refusing to install")
    started = time.perf_counter()
    namespace: dict = {}
    try:
        exec(compile(source, "<codegen:asm:stored>", "exec"), namespace)
        bind = namespace["bind"]
    except Exception as error:
        raise ValueError(
            f"stored codegen source does not load: "
            f"{type(error).__name__}: {error}") from error
    if not callable(bind):
        raise ValueError("stored codegen source has no callable bind()")
    compiled = CompiledAsm(source, bind)
    _CODEGEN_CACHE[program] = compiled
    if obs.enabled:
        obs.add("codegen.asm.installs")
        obs.observe("codegen.install_seconds",
                    time.perf_counter() - started)
    return compiled


def run_codegen(machine, fuel: int) -> Behavior:
    """Run an ``engine="codegen"`` machine to a behavior."""
    trace: list = []
    machine._trace = trace
    machine._cg_steps = 0
    st = 0
    try:
        machine.start()
        entry = codegen_program(machine.program).bind(machine, fuel, _H)
        try:
            fn = entry
            while fn is not None:
                fn, st = fn(st)
        except BaseException:
            st = machine._cg_steps
            raise
        finally:
            machine.steps += st
    except DynamicError as exc:
        return GoesWrong(trace, reason=str(exc))
    if not machine.done:
        return Diverges(trace)
    assert machine.return_code is not None
    return Converges(trace, machine.return_code)
