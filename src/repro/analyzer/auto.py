"""``auto_bound``: certified automatic stack-bound inference (paper §5).

For every Clight statement the analyzer returns a ground bound ``B`` and a
derivation concluding ``{B} S {(B, B, B, B)}`` — the statement needs at
most ``B`` bytes of stack for its calls and restores all of it on every
exit.  Composite statements are combined exactly as in the paper's Fig. 5:
sub-derivations are lifted to the common bound ``max(B1, B2)`` with
Q:FRAME (the frame constant being the difference ``max - Bi``), then
joined with the structural rule.

Because the sub-derivations' bounds are ground max-plus expressions, every
side condition of the emitted derivation is discharged *exactly* by the
checker — the analyzer never relies on sampled comparisons.
"""

from __future__ import annotations

import time
from typing import Optional

from repro import obs
from repro.analyzer.callgraph import build_call_graph
from repro.clight import ast as cl
from repro.errors import AnalysisError
from repro.events.metrics import StackMetric
from repro.logic import derivation as dv
from repro.logic.assertions import FunContext, FunSpec, Post
from repro.logic.bexpr import (BExpr, BFrameDiff, ZERO, badd, bmax, bmetric,
                               evaluate)
from repro.logic.checker import CheckerContext, CheckReport, \
    check_function_spec


def auto_bound(stmt: cl.Stmt, gamma: FunContext,
               externals: Optional[set[str]] = None
               ) -> tuple[BExpr, dv.Derivation]:
    """Bound one statement; returns ``(B, derivation of {B} S {B,B,B,B})``."""
    externals = externals or set()

    if isinstance(stmt, cl.SSkip):
        return ZERO, dv.DSkip(_uniform_triple(ZERO, stmt))
    if isinstance(stmt, cl.SSet):
        return ZERO, dv.DSet(_uniform_triple(ZERO, stmt))
    if isinstance(stmt, cl.SStore):
        return ZERO, dv.DStore(_uniform_triple(ZERO, stmt))
    if isinstance(stmt, cl.SBreak):
        return ZERO, dv.DBreak(_uniform_triple(ZERO, stmt))
    if isinstance(stmt, cl.SContinue):
        return ZERO, dv.DContinue(_uniform_triple(ZERO, stmt))
    if isinstance(stmt, cl.SReturn):
        return ZERO, dv.DReturn(_uniform_triple(ZERO, stmt))
    if isinstance(stmt, cl.SCall):
        return _bound_call(stmt, gamma, externals)
    if isinstance(stmt, cl.SSeq):
        bound1, deriv1 = auto_bound(stmt.first, gamma, externals)
        bound2, deriv2 = auto_bound(stmt.second, gamma, externals)
        total = bmax(bound1, bound2)
        node = dv.DSeq(_uniform_triple(total, stmt),
                       _lift(deriv1, total), _lift(deriv2, total))
        return total, node
    if isinstance(stmt, cl.SIf):
        bound1, deriv1 = auto_bound(stmt.then, gamma, externals)
        bound2, deriv2 = auto_bound(stmt.otherwise, gamma, externals)
        total = bmax(bound1, bound2)
        node = dv.DIf(_uniform_triple(total, stmt),
                      _lift(deriv1, total), _lift(deriv2, total))
        return total, node
    if isinstance(stmt, cl.SLoop):
        bound1, deriv1 = auto_bound(stmt.body, gamma, externals)
        bound2, deriv2 = auto_bound(stmt.post, gamma, externals)
        total = bmax(bound1, bound2)
        node = dv.DLoop(_uniform_triple(total, stmt),
                        _lift(deriv1, total), _lift(deriv2, total))
        return total, node
    if isinstance(stmt, cl.SBlock):
        bound, deriv = auto_bound(stmt.body, gamma, externals)
        node = dv.DBlock(_uniform_triple(bound, stmt), deriv)
        return bound, node
    raise AnalysisError(f"statement not supported by the analyzer: "
                        f"{type(stmt).__name__}")


def _bound_call(stmt: cl.SCall, gamma: FunContext,
                externals: set[str]) -> tuple[BExpr, dv.Derivation]:
    if stmt.callee in gamma:
        spec = gamma[stmt.callee]
        if spec.params:
            raise AnalysisError(
                f"{stmt.callee!r} has a parametric spec; the automatic "
                "analyzer only composes ground bounds — frame it manually")
        cost = bmetric(stmt.callee)
        total = badd(spec.pre, cost)
        post = badd(spec.post, cost)
        triple = dv.Triple(total, stmt, Post(post, post, post, post))
        return total, dv.DCall(triple, stmt.callee, {})
    if stmt.callee in externals:
        return ZERO, dv.DExternal(_uniform_triple(ZERO, stmt), stmt.callee)
    raise AnalysisError(
        f"call to {stmt.callee!r}: no specification in Γ and not a known "
        "external (is the call graph processed in topological order?)")


def _uniform_triple(bound: BExpr, stmt: cl.Stmt) -> dv.Triple:
    return dv.Triple(bound, stmt, Post.uniform(bound))


def _lift(deriv: dv.Derivation, target: BExpr) -> dv.Derivation:
    """Frame a derivation up to ``target`` (Fig. 5's Q:FRAME step)."""
    current = deriv.conclusion.pre
    if repr(current) == repr(target):
        return deriv
    diff = BFrameDiff(target, current)
    lifted = dv.Triple(
        badd(current, diff), deriv.conclusion.stmt,
        deriv.conclusion.post.map(lambda q: badd(q, diff)))
    return dv.DFrame(lifted, diff, deriv)


# ---------------------------------------------------------------------------
# Whole-program analysis
# ---------------------------------------------------------------------------


class FunctionAnalysis:
    """Per-function result: spec, derivation, total symbolic bound."""

    __slots__ = ("name", "body_bound", "total_bound", "derivation")

    def __init__(self, name: str, body_bound: BExpr, total_bound: BExpr,
                 derivation: dv.Derivation) -> None:
        self.name = name
        self.body_bound = body_bound
        self.total_bound = total_bound
        self.derivation = derivation

    def __repr__(self) -> str:
        return f"FunctionAnalysis({self.name}: {self.total_bound!r})"


class AnalysisResult:
    """The output of a whole-program automatic analysis."""

    def __init__(self, program: cl.Program, gamma: FunContext,
                 functions: dict[str, FunctionAnalysis],
                 elapsed_seconds: float) -> None:
        self.program = program
        self.gamma = gamma
        self.functions = functions
        self.elapsed_seconds = elapsed_seconds

    def bound_expr(self, name: str) -> BExpr:
        """The symbolic bound for *calling* ``name`` (includes its frame)."""
        return self.functions[name].total_bound

    def bound_bytes(self, name: str, metric: StackMetric) -> int:
        """The concrete byte bound under a compiler-produced metric."""
        value = evaluate(self.bound_expr(name), metric.as_dict())
        if value == float("inf"):
            raise AnalysisError(f"bound of {name} is unbounded")
        return int(value)

    def check(self, externals: Optional[set[str]] = None) -> CheckReport:
        """Re-validate every emitted derivation with the logic checker."""
        ctx = CheckerContext(self.gamma,
                             externals=externals or self.program.externals)
        report = CheckReport()
        with obs.span("analyze.check", functions=len(self.functions)) as sp:
            for name, analysis in self.functions.items():
                function = self.program.function(name)
                check_function_spec(function, analysis.derivation, ctx,
                                    report)
            sp.set(nodes=report.nodes, exact=report.exact_conditions)
        obs.observe("analyze.check_seconds", sp.dur)
        obs.add("checker.nodes", report.nodes)
        return report


class StackAnalyzer:
    """Analyze a whole Clight program in topological call order."""

    def __init__(self, program: cl.Program) -> None:
        self.program = program

    def analyze(self) -> AnalysisResult:
        start = time.perf_counter()
        with obs.span("analyze.auto") as sp:
            graph = build_call_graph(self.program)
            order = graph.topological_order()
            gamma = FunContext()
            results: dict[str, FunctionAnalysis] = {}
            externals = set(self.program.externals)
            for name in order:
                function = self.program.function(name)
                body_bound, derivation = auto_bound(function.body, gamma,
                                                    externals)
                gamma.add(FunSpec.constant(name, body_bound,
                                           description="auto_bound"))
                total = badd(bmetric(name), body_bound)
                results[name] = FunctionAnalysis(name, body_bound, total,
                                                 derivation)
            sp.set(functions=len(results))
        obs.observe("analyze.auto_seconds", sp.dur)
        elapsed = time.perf_counter() - start
        return AnalysisResult(self.program, gamma, results, elapsed)
