"""The Clight → Cminor pass: lay out addressable locals in one block.

Each addressable local of a function is assigned a fixed offset inside a
single frame block named ``$frame``; ``EAddrStack(x)`` becomes
``EAddrStack($frame) + offset(x)``.  The frame size is the first
compilation artifact that will end up in the cost metric: the Mach frame
later embeds this block verbatim.

The pass preserves traces exactly (it only renames addresses within one
allocation), which the differential tests check via quantitative
refinement with equality of memory events.
"""

from __future__ import annotations

from repro.c.types import align_up
from repro.clight import ast as cl

FRAME_VAR = "$frame"


class FrameLayout:
    """Offsets of the addressable locals inside the merged block."""

    __slots__ = ("offsets", "size")

    def __init__(self, offsets: dict[str, int], size: int) -> None:
        self.offsets = offsets
        self.size = size

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}@{o}" for n, o in sorted(self.offsets.items()))
        return f"FrameLayout({inner}; {self.size} bytes)"


class CminorProgram:
    """A Clight-shaped program in Cminor form, plus per-function layouts."""

    def __init__(self, program: cl.Program,
                 layouts: dict[str, FrameLayout]) -> None:
        self.program = program
        self.layouts = layouts

    @property
    def functions(self):
        return self.program.functions

    @property
    def globals(self):
        return self.program.globals

    @property
    def externals(self):
        return self.program.externals


def layout_stackvars(stackvars: list[cl.StackVar]) -> FrameLayout:
    """Sequential layout honoring each variable's alignment; 8-aligned total."""
    offset = 0
    offsets: dict[str, int] = {}
    for var in stackvars:
        offset = align_up(offset, max(var.alignment, 1))
        offsets[var.name] = offset
        offset += var.size
    return FrameLayout(offsets, align_up(offset, 8))


def cminor_of_clight(program: cl.Program) -> CminorProgram:
    layouts: dict[str, FrameLayout] = {}
    functions = []
    for function in program.functions.values():
        layout = layout_stackvars(function.stackvars)
        layouts[function.name] = layout
        frame_vars = ([cl.StackVar(FRAME_VAR, layout.size, 8)]
                      if layout.size > 0 else [])
        body = _rewrite_stmt(function.body, layout)
        functions.append(cl.Function(
            function.name, function.params, function.temps, frame_vars, body,
            returns_float=function.returns_float,
            param_is_float=function.param_is_float,
            float_temps=function.float_temps))
    lowered = cl.Program([g for g in program.globals], functions,
                         program.externals, program.main)
    return CminorProgram(lowered, layouts)


def _rewrite_stmt(stmt: cl.Stmt, layout: FrameLayout) -> cl.Stmt:
    if isinstance(stmt, (cl.SSkip, cl.SBreak, cl.SContinue)):
        return stmt
    if isinstance(stmt, cl.SSet):
        return cl.SSet(stmt.temp, _rewrite_expr(stmt.expr, layout))
    if isinstance(stmt, cl.SStore):
        return cl.SStore(stmt.chunk, _rewrite_expr(stmt.addr, layout),
                         _rewrite_expr(stmt.value, layout))
    if isinstance(stmt, cl.SCall):
        return cl.SCall(stmt.dest, stmt.callee,
                        [_rewrite_expr(a, layout) for a in stmt.args])
    if isinstance(stmt, cl.SSeq):
        return cl.SSeq(_rewrite_stmt(stmt.first, layout),
                       _rewrite_stmt(stmt.second, layout))
    if isinstance(stmt, cl.SIf):
        return cl.SIf(_rewrite_expr(stmt.cond, layout),
                      _rewrite_stmt(stmt.then, layout),
                      _rewrite_stmt(stmt.otherwise, layout))
    if isinstance(stmt, cl.SLoop):
        return cl.SLoop(_rewrite_stmt(stmt.body, layout),
                        _rewrite_stmt(stmt.post, layout))
    if isinstance(stmt, cl.SBlock):
        return cl.SBlock(_rewrite_stmt(stmt.body, layout))
    if isinstance(stmt, cl.SReturn):
        value = _rewrite_expr(stmt.value, layout) if stmt.value is not None \
            else None
        return cl.SReturn(value)
    raise TypeError(f"unknown statement {type(stmt).__name__}")


def _rewrite_expr(expr: cl.Expr, layout: FrameLayout) -> cl.Expr:
    if isinstance(expr, cl.EAddrStack):
        offset = layout.offsets[expr.name]
        base = cl.EAddrStack(FRAME_VAR)
        if offset == 0:
            return base
        return cl.EBinop("add", base, cl.EConstInt(offset))
    if isinstance(expr, cl.ELoad):
        return cl.ELoad(expr.chunk, _rewrite_expr(expr.addr, layout))
    if isinstance(expr, cl.EUnop):
        return cl.EUnop(expr.op, _rewrite_expr(expr.arg, layout))
    if isinstance(expr, cl.EBinop):
        return cl.EBinop(expr.op, _rewrite_expr(expr.left, layout),
                         _rewrite_expr(expr.right, layout))
    return expr
