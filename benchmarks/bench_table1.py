"""Benchmark + regeneration of the paper's Table 1.

"Automatically verified stack bounds for C functions": for every file of
the suite, compile with Quantitative CompCert, run the certified stack
analyzer, and print the per-function verified bounds in bytes.

Run standalone for the full table:

    python benchmarks/bench_table1.py

or under pytest-benchmark (times the verify-compile-analyze pipeline):

    pytest benchmarks/bench_table1.py --benchmark-only
"""

import pytest

from repro.driver import verify_stack_bounds
from repro.programs.catalog import TABLE1
from repro.programs.loader import load_source


def analyze_entry(entry):
    source = load_source(entry.path)
    bounds = verify_stack_bounds(source, filename=entry.path,
                                 macros=entry.macros)
    return [(fn, bounds.bytes(fn)) for fn in entry.functions]


def generate_table1():
    """All rows of Table 1 as (file, function, bytes)."""
    rows = []
    for entry in TABLE1:
        for fn, byte_bound in analyze_entry(entry):
            rows.append((entry.display_name, fn, byte_bound))
    return rows


def print_table1(rows):
    print()
    print(f"{'File Name':30s}  {'Function Name':22s}  Verified Stack Bound")
    print("-" * 76)
    previous = None
    for display, fn, byte_bound in rows:
        shown = display if display != previous else ""
        previous = display
        print(f"{shown:30s}  {fn:22s}  {byte_bound} bytes")


@pytest.mark.table
@pytest.mark.parametrize("entry", TABLE1, ids=lambda e: e.display_name)
def test_table1_entry(benchmark, entry):
    rows = benchmark(analyze_entry, entry)
    assert rows
    assert all(byte_bound >= 4 for _fn, byte_bound in rows)
    benchmark.extra_info["bounds"] = {fn: b for fn, b in rows}


@pytest.mark.table
def test_table1_full(benchmark):
    rows = benchmark.pedantic(generate_table1, rounds=1, iterations=1)
    print_table1(rows)
    # Sanity of the table's shape: every function is bounded, leaf
    # functions cost exactly one frame (SF + 4 >= 4).
    assert len(rows) == sum(len(e.functions) for e in TABLE1)


if __name__ == "__main__":
    print_table1(generate_table1())
