"""Events, traces, behaviors, valuations and weights (paper §3.1).

The grammar reproduced here::

    I/O events      nu  ::= f(v* |-> v)
    Memory events   mu  ::= call(f) | ret(f)
    Finite traces   t   ::= eps | nu . t | mu . t
    Behaviors       B   ::= conv(t, n) | div(T) | fail(t)

Weights::

    V_M(eps)    = 0
    V_M(a . t)  = M(a) + V_M(t)
    W_M(B)      = sup { V_M(t) | t in prefs(B) }

Because the Python interpreters observe executions with finite fuel, a
diverging behavior carries the finite prefix that was observed; all weight
computations are exact on that prefix, which is what every test and
benchmark consumes.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence


class Event:
    """Abstract trace event."""

    __slots__ = ()

    @property
    def is_memory_event(self) -> bool:
        raise NotImplementedError


class IOEvent(Event):
    """An observable external-function event ``f(args |-> result)``.

    These are CompCert's original events; they must be preserved exactly by
    compilation.
    """

    __slots__ = ("name", "args", "result")

    def __init__(self, name: str, args: Sequence[object], result: object) -> None:
        self.name = name
        self.args = tuple(args)
        self.result = result

    @property
    def is_memory_event(self) -> bool:
        return False

    def __repr__(self) -> str:
        args = ", ".join(repr(a) for a in self.args)
        return f"{self.name}({args} |-> {self.result!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, IOEvent)
            and other.name == self.name
            and other.args == self.args
            and other.result == self.result
        )

    def __hash__(self) -> int:
        return hash(("IOEvent", self.name, self.args, self.result))


class CallEvent(Event):
    """Memory event ``call(f)``: an internal function was entered."""

    __slots__ = ("function",)

    def __init__(self, function: str) -> None:
        self.function = function

    @property
    def is_memory_event(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"call({self.function})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CallEvent) and other.function == self.function

    def __hash__(self) -> int:
        return hash(("CallEvent", self.function))


class ReturnEvent(Event):
    """Memory event ``ret(f)``: an internal function returned."""

    __slots__ = ("function",)

    def __init__(self, function: str) -> None:
        self.function = function

    @property
    def is_memory_event(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"ret({self.function})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ReturnEvent) and other.function == self.function

    def __hash__(self) -> int:
        return hash(("ReturnEvent", self.function))


Trace = tuple  # a finite trace is a tuple of events


# ---------------------------------------------------------------------------
# Behaviors
# ---------------------------------------------------------------------------


class Behavior:
    """A program behavior together with its (observed) finite trace."""

    __slots__ = ("trace",)

    def __init__(self, trace: Iterable[Event]) -> None:
        self.trace: Trace = tuple(trace)

    def pruned(self) -> "Behavior":
        """The behavior with all memory events deleted (paper's B-bar)."""
        raise NotImplementedError

    def _clone(self, trace: Trace) -> "Behavior":
        raise NotImplementedError


class Converges(Behavior):
    """``conv(t, n)``: terminating execution with return code ``n``."""

    __slots__ = ("return_code",)

    def __init__(self, trace: Iterable[Event], return_code: int) -> None:
        super().__init__(trace)
        self.return_code = return_code

    def pruned(self) -> "Converges":
        return Converges(prune(self.trace), self.return_code)

    def __repr__(self) -> str:
        return f"conv({list(self.trace)!r}, {self.return_code})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Converges)
            and other.trace == self.trace
            and other.return_code == self.return_code
        )

    def __hash__(self) -> int:
        return hash(("Converges", self.trace, self.return_code))


class Diverges(Behavior):
    """``div(T)``: non-terminating execution.

    ``trace`` holds the finite prefix observed before fuel ran out.
    """

    __slots__ = ()

    def pruned(self) -> "Diverges":
        return Diverges(prune(self.trace))

    def __repr__(self) -> str:
        return f"div({list(self.trace)!r} ...)"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Diverges) and other.trace == self.trace

    def __hash__(self) -> int:
        return hash(("Diverges", self.trace))


class GoesWrong(Behavior):
    """``fail(t)``: the execution went wrong after emitting ``t``."""

    __slots__ = ("reason",)

    def __init__(self, trace: Iterable[Event], reason: str = "") -> None:
        super().__init__(trace)
        self.reason = reason

    def pruned(self) -> "GoesWrong":
        return GoesWrong(prune(self.trace), self.reason)

    def __repr__(self) -> str:
        return f"fail({list(self.trace)!r}; {self.reason})"

    def __eq__(self, other: object) -> bool:
        # The failure reason is diagnostic only and not part of the
        # semantic object, so it does not participate in equality.
        return isinstance(other, GoesWrong) and other.trace == self.trace

    def __hash__(self) -> int:
        return hash(("GoesWrong", self.trace))


# ---------------------------------------------------------------------------
# Trace operations
# ---------------------------------------------------------------------------


def prune(trace: Iterable[Event]) -> Trace:
    """Delete all memory events (the paper's overline operation)."""
    return tuple(event for event in trace if not event.is_memory_event)


def prefixes(trace: Sequence[Event]) -> Iterator[Trace]:
    """All finite prefixes of a finite trace, shortest first."""
    for length in range(len(trace) + 1):
        yield tuple(trace[:length])


class WeightFold:
    """One-pass streaming valuation and weight under a metric.

    The single shared implementation of the paper's ``V_M`` / ``W_M``
    folds: feed a trace event by event (the fold is itself an event
    consumer) and read ``total`` for the valuation ``V_M(t)`` and
    ``peak`` for the weight ``sup { V_M(t') | t' prefix of t }``.  The
    empty prefix counts, so ``peak`` is never negative.  Used by
    :func:`valuation` / :func:`weight_of_trace`, the heap accounting,
    the stack monitor, and the campaign's streaming deep-mode oracles.
    """

    __slots__ = ("metric", "total", "peak")

    def __init__(self, metric: Callable[[Event], int]) -> None:
        self.metric = metric
        self.total = 0
        self.peak = 0

    def __call__(self, event: Event) -> None:
        total = self.total + self.metric(event)
        self.total = total
        if total > self.peak:
            self.peak = total

    feed = __call__


def weight_fold(metric: Callable[[Event], int],
                events: Iterable[Event] = ()) -> WeightFold:
    """A :class:`WeightFold` primed with ``events`` (possibly empty)."""
    fold = WeightFold(metric)
    feed = fold.feed
    for event in events:
        feed(event)
    return fold


def valuation(metric: Callable[[Event], int], trace: Iterable[Event]) -> int:
    """``V_M(t)``: the sum of the metric over the events of ``t``."""
    return weight_fold(metric, trace).total


def weight_of_trace(metric: Callable[[Event], int], trace: Sequence[Event]) -> int:
    """``sup { V_M(t') | t' prefix of t }`` computed in one pass."""
    return weight_fold(metric, trace).peak


def weight(metric: Callable[[Event], int], behavior: Behavior) -> int:
    """``W_M(B)`` over the observed trace of ``B``.

    For stack metrics the valuation of the empty prefix is 0, so the weight
    is always non-negative.
    """
    return weight_of_trace(metric, behavior.trace)


def open_calls(trace: Iterable[Event]) -> dict[str, int]:
    """Per-function count of calls not yet matched by a return.

    For a stack metric ``M``, ``V_M(t) = sum_f M(call f) * open_calls(t)[f]``;
    this decomposition drives the all-metrics refinement check.
    """
    counts: dict[str, int] = {}
    for event in trace:
        if isinstance(event, CallEvent):
            counts[event.function] = counts.get(event.function, 0) + 1
        elif isinstance(event, ReturnEvent):
            counts[event.function] = counts.get(event.function, 0) - 1
    return counts


def is_well_bracketed(trace: Sequence[Event],
                      require_empty: bool = False) -> bool:
    """Check that call/ret events nest like a call stack.

    Every trace emitted by our interpreters satisfies this; it is asserted
    in property tests as a sanity invariant.  With ``require_empty`` the
    trace must also close every frame it opens — the right notion for a
    *converged* execution, where a leftover open call means a ``ret``
    event went missing (a fault plain nesting cannot see, since any
    prefix of a bracketed trace is bracketed).
    """
    stack: list[str] = []
    for event in trace:
        if isinstance(event, CallEvent):
            stack.append(event.function)
        elif isinstance(event, ReturnEvent):
            if not stack or stack[-1] != event.function:
                return False
            stack.pop()
    return not (require_empty and stack)


def call_depth_profile(trace: Sequence[Event]) -> list[int]:
    """The call-stack depth after each event (diagnostic helper)."""
    profile: list[int] = []
    depth = 0
    for event in trace:
        if isinstance(event, CallEvent):
            depth += 1
        elif isinstance(event, ReturnEvent):
            depth -= 1
        profile.append(depth)
    return profile
