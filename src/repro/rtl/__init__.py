"""RTL: a control-flow graph of three-address code over virtual registers.

This mirrors CompCert's RTL, the workhorse representation for dataflow
optimization and register allocation:

* :mod:`repro.rtl.ast` — instructions, functions, programs;
* :mod:`repro.rtl.lower` — Cminor → RTL construction;
* :mod:`repro.rtl.semantics` — an interpreter emitting call/ret events
  (used by the differential refinement tests);
* :mod:`repro.rtl.dataflow` — a generic Kildall worklist solver;
* :mod:`repro.rtl.constprop` — conditional constant propagation;
* :mod:`repro.rtl.liveness` — backward liveness analysis;
* :mod:`repro.rtl.deadcode` — dead-code elimination on pure instructions.
"""

from repro.rtl.ast import RTLFunction, RTLProgram
from repro.rtl.lower import rtl_of_cminor

__all__ = ["RTLProgram", "RTLFunction", "rtl_of_cminor"]
