"""Differential suite: the pre-decoded Clight/RTL/Mach interpreters vs.
the legacy ``step()`` machines.

Each decoded engine (`repro.clight.decode`, `repro.rtl.decode`,
`repro.mach.decode`) must be observationally identical to its legacy
loop: same traces, same outputs, same return codes, same outcome
classification and step counts — on the full catalog and on generated
seeds at every ablation point.  The streaming entry points must also
agree with themselves: feeding a sink and materializing a trace are the
same computation.
"""

from __future__ import annotations

import pytest

from repro.clight import semantics as clight_sem
from repro.driver import compile_c
from repro.events.stream import (BracketChecker, CountingSink, ExactMatcher,
                                 PrunedMatcher, Tee)
from repro.events.trace import WeightFold, prune
from repro.mach import semantics as mach_sem
from repro.programs.catalog import ALL_RUNNABLE
from repro.programs.loader import load_source
from repro.rtl import semantics as rtl_sem
from repro.testing.oracles import ABLATIONS, check_seed
from repro.testing.progen import generate_program

CLIGHT_FUEL = 5_000_000
INTERP_FUEL = 50_000_000

#: (name, semantics module, Compilation attribute, fuel) per level.
LEVELS = [
    ("clight", clight_sem, "clight", CLIGHT_FUEL),
    ("rtl", rtl_sem, "rtl", INTERP_FUEL),
    ("mach", mach_sem, "mach", INTERP_FUEL),
]


def _stream_fingerprint(sem, program, fuel, decoded):
    trace: list = []
    output: list = []
    outcome = sem.run_streamed(program, trace.append, fuel=fuel,
                               output=output, decoded=decoded)
    return (outcome.kind, outcome.return_code, outcome.reason,
            outcome.events, outcome.steps, tuple(trace), tuple(output))


def _assert_levels_agree(compilation, context=""):
    for name, sem, attr, fuel in LEVELS:
        program = getattr(compilation, attr)
        legacy = _stream_fingerprint(sem, program, fuel, decoded=False)
        decoded = _stream_fingerprint(sem, program, fuel, decoded=True)
        assert legacy == decoded, f"{name} disagrees {context}"


@pytest.mark.parametrize("path", ALL_RUNNABLE)
def test_catalog_program_agrees(path):
    compilation = compile_c(load_source(path), filename=path)
    _assert_levels_agree(compilation, context=f"on {path}")


@pytest.mark.parametrize("seed", range(0, 30, 5))
def test_generated_seed_agrees_at_every_ablation(seed):
    source = generate_program(seed)
    for name, options in ABLATIONS.items():
        compilation = compile_c(source, filename=f"seed{seed}.c",
                                options=options)
        _assert_levels_agree(compilation, context=f"under ablation {name!r}")


@pytest.mark.parametrize("decoded", [False, True])
def test_run_program_matches_run_streamed(decoded):
    """`run_program` is the materialized view of `run_streamed`."""
    compilation = compile_c(load_source("paper_example.c"),
                            filename="paper_example.c")
    for name, sem, attr, fuel in LEVELS:
        program = getattr(compilation, attr)
        behavior = sem.run_program(program, fuel=fuel, decoded=decoded)
        trace: list = []
        outcome = sem.run_streamed(program, trace.append, fuel=fuel,
                                   decoded=decoded)
        assert type(behavior).__name__ == "Converges"
        assert outcome.converged
        assert tuple(behavior.trace) == tuple(trace)
        assert behavior.return_code == outcome.return_code


@pytest.mark.parametrize("fuel", [0, 1, 7, 10_000])
def test_fuel_exhaustion_agrees(fuel):
    """Tiny fuels probe the done-at-exactly-fuel boundary on all levels."""
    compilation = compile_c(load_source("compcert/mandelbrot.c"),
                            filename="compcert/mandelbrot.c")
    for name, sem, attr, _fuel in LEVELS:
        program = getattr(compilation, attr)
        legacy = _stream_fingerprint(sem, program, fuel, decoded=False)
        decoded = _stream_fingerprint(sem, program, fuel, decoded=True)
        assert legacy == decoded, f"{name} disagrees at fuel {fuel}"
        assert legacy[0] == "diverges"


def test_streaming_consumers_see_the_materialized_trace():
    """One streamed pass feeds matcher+fold+bracket identically to the
    post-hoc folds over the materialized trace."""
    compilation = compile_c(load_source("recursive/fib.c"),
                            filename="recursive/fib.c")
    behavior = clight_sem.run_program(compilation.clight, fuel=CLIGHT_FUEL)
    metric = compilation.metric
    exact = ExactMatcher(behavior.trace)
    pruned = PrunedMatcher(prune(behavior.trace))
    fold = WeightFold(metric)
    bracket = BracketChecker()
    counting = CountingSink(Tee(exact, pruned, fold, bracket))
    outcome = clight_sem.run_streamed(compilation.clight, counting,
                                      fuel=CLIGHT_FUEL)
    assert outcome.converged
    assert counting.count == len(behavior.trace) == outcome.events
    assert exact.matched()
    assert pruned.matched()
    assert bracket.ok and not bracket.stack
    post_hoc = WeightFold(metric)
    for event in behavior.trace:
        post_hoc(event)
    assert (fold.total, fold.peak) == (post_hoc.total, post_hoc.peak)


def test_deep_verdicts_identical_between_engines(monkeypatch):
    """The deep campaign mode must produce byte-identical verdicts
    whichever engine runs underneath."""
    import repro.clight.semantics as cs
    import repro.mach.semantics as ms
    import repro.rtl.semantics as rs

    verdicts = {}
    for engine in (False, True):
        monkeypatch.setattr(cs, "DEFAULT_DECODED", engine)
        monkeypatch.setattr(rs, "DEFAULT_DECODED", engine)
        monkeypatch.setattr(ms, "DEFAULT_DECODED", engine)
        verdicts[engine] = [
            check_seed(seed, deep=True, probes=False).as_json()
            for seed in range(6)]
    for old, new in zip(verdicts[False], verdicts[True]):
        old.pop("timings")
        new.pop("timings")
        assert old == new


def test_legacy_engines_stay_selectable():
    """`decoded=False` must keep exercising the original machines (the
    differential oracle depends on them remaining live code paths)."""
    compilation = compile_c(load_source("paper_example.c"),
                            filename="paper_example.c")
    for name, sem, attr, fuel in LEVELS:
        assert sem.DEFAULT_DECODED is True
        behavior = sem.run_program(getattr(compilation, attr), fuel=fuel,
                                   decoded=False)
        assert type(behavior).__name__ == "Converges"
