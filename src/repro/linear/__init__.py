"""Linear: linearized code over machine locations.

The CFG of allocated RTL is serialized into a label/branch instruction
list (CompCert's ``Linearize`` + ``Allocation`` output combined): every
virtual register has been replaced by a physical register or spill slot,
and control flow is explicit ``goto``/conditional-branch.
"""

from repro.linear.ast import LinearFunction, LinearProgram
from repro.linear.lower import linear_of_rtl

__all__ = ["LinearProgram", "LinearFunction", "linear_of_rtl"]
