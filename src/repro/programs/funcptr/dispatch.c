/* Function-pointer dispatch: an interpreter-style operator table built
 * from scalar function pointers (the supported fragment: no fp arrays).
 * The value analysis resolves `op` to {op_add, op_sub, op_mac}; the
 * lowering devirtualizes `apply`'s indirect call into a fid-comparison
 * chain, so the verified bound for `apply` is
 *     M(apply) + max(M(op_add), M(op_sub), M(op_mac) + M(op_add))
 * — the max over the candidate targets, exactly the paper's call rule
 * taken over the resolved candidate set. */

int op_add(int a, int b) { return a + b; }

int op_sub(int a, int b) { return a - b; }

/* Multiply-accumulate by repeated addition: calls op_add, so this
 * candidate is the deepest — it dominates the dispatch bound. */
int op_mac(int a, int b) {
    int acc = a;
    int i;
    for (i = 0; i < 4; i++) acc = op_add(acc, b);
    return acc;
}

int apply(int (*op)(int, int), int a, int b) {
    return op(a, b);
}

int main() {
    int acc = 0;
    int i;
    for (i = 0; i < 9; i++) {
        int (*op)(int, int);
        if (i % 3 == 0) op = op_add;
        else if (i % 3 == 1) op = op_sub;
        else op = op_mac;
        acc = apply(op, acc, i + 1);
    }
    /* i:      0   1   2    3   4   5    6   7   8
     * op:     +   -   mac  +   -   mac  +   -   mac
     * acc:    1  -1   11   15  10  34   41  33  69 */
    print_int(acc);
    return acc == 69;
}
