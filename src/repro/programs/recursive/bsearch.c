/* Table 2: bsearch — recursive binary search, logarithmic recursion
 * depth.  Verified bound: M(bsearch) * (2 + log2(hi - lo)) bytes. */

#ifndef N
#define N 1000
#endif

typedef unsigned int u32;
u32 a[N];
u32 seed = 13;

u32 rnd() {
    seed = seed * 1664525 + 1013904223;
    return seed;
}

u32 bsearch(u32 x, u32 lo, u32 hi) {
    u32 m = (lo + hi) / 2;
    if (hi - lo <= 1) return lo;
    if (a[m] > x) hi = m; else lo = m;
    return bsearch(x, lo, hi);
}

int main() {
    u32 i, prev = 0, idx, x;
    for (i = 0; i < N; i++) {
        a[i] = prev + rnd() % 11;
        prev = a[i];
    }
    x = rnd() % (11 * N);
    idx = bsearch(x, 0, N);
    print_int((int)idx);
    return a[idx] <= x;
}
