"""Pre-decoded (threaded-code) execution engine for ASMsz.

The legacy interpreter in :mod:`repro.asm.machine` dispatches every step
through a ~25-branch ``isinstance`` chain, resolves addressing modes and
operator tables per instruction, and keeps registers in string-keyed
dicts.  This module compiles each :class:`~repro.asm.ast.AsmProgram`
*once* into arrays of per-instruction closures — classic threaded code —
so the hot loop is reduced to ``pc = ops[pc](pc)``:

* operand registers become list indices resolved at decode time;
* immediates, jump targets, return addresses (even their little-endian
  byte encoding) and global addresses are precomputed;
* the dominant ``Pload``/``Pstore`` chunks get aligned-word fast paths
  that read and write the flat ``bytearray`` directly.

Decoding happens in two stages so the expensive part is shared:

1. :func:`decode_program` lowers the instruction objects into
   machine-independent *factories* and caches the result per program
   (``WeakKeyDictionary``, so the cache dies with the program);
2. :func:`bind_machine` instantiates the factories against one
   :class:`AsmMachine` (registers, memory, stack base), which is a single
   closure allocation per instruction.

The engine is observably equivalent to the legacy step loop by
construction: same events, same outputs, same ESP watermark, same
overflow point, and byte-identical error messages — the differential
suite in ``tests/unit/test_asm_decode.py`` checks this over the whole
program catalog, and the legacy loop stays available behind
``AsmMachine(..., decoded=False)`` as the oracle.
"""

from __future__ import annotations

import struct
from typing import Callable, Optional
from weakref import WeakKeyDictionary

from repro import ints, obs
from repro.asm import ast as asm
from repro.errors import (DynamicError, MemoryError_, StackOverflowError_,
                          UndefinedBehaviorError)
from repro.events.trace import Behavior, Converges, Diverges, GoesWrong
from repro.memory.values import VFloat, VInt
from repro.runtime import call_external

# Constants mirrored from repro.asm.machine (imported there lazily to keep
# the module graph acyclic: machine -> decode only at bind time).
GLOBAL_BASE = 0x1000
HALT_ADDRESS = 0xFFFF0000
CODE_BASE = 0x40000000
FUNCTION_STRIDE = 0x100000

IREG_INDEX = {name: i for i, name in enumerate(asm.INT_REG_NAMES)}
FREG_INDEX = {name: i for i, name in enumerate(asm.FLOAT_REG_NAMES)}
EAX = IREG_INDEX["eax"]

_MASK = 0xFFFFFFFF
_F64 = struct.Struct("<d")

_wrap = ints.wrap
_to_signed = ints.to_signed


class RegisterFile:
    """Index-based register file with a dict-like name view.

    The decoded engine works on the raw ``array`` list; the name-keyed
    ``__getitem__``/``__setitem__`` keep the legacy ``step()`` path and
    external consumers (``machine.iregs["eax"]``) working unchanged.
    """

    __slots__ = ("array", "_index")

    def __init__(self, index: dict[str, int], zero) -> None:
        self.array = [zero] * len(index)
        self._index = index

    def __getitem__(self, name: str):
        return self.array[self._index[name]]

    def __setitem__(self, name: str, value) -> None:
        self.array[self._index[name]] = value

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __iter__(self):
        return iter(self._index)

    def __len__(self) -> int:
        return len(self._index)

    def keys(self):
        return self._index.keys()

    def items(self):
        return ((name, self.array[i]) for name, i in self._index.items())

    def as_dict(self) -> dict:
        return dict(self.items())

    def __repr__(self) -> str:
        return f"RegisterFile({self.as_dict()!r})"


# ---------------------------------------------------------------------------
# Shared raise helpers (cold paths, byte-identical legacy messages)
# ---------------------------------------------------------------------------


def _overflow(machine, new_esp: int) -> None:
    raise StackOverflowError_(
        "stack overflow: ESP would drop "
        f"{machine.stack_base - new_esp} bytes below the stack block",
        needed=machine.stack_top - new_esp,
        available=machine.stack_top - machine.stack_base)


def _oob(address: int, size: int) -> None:
    raise MemoryError_(
        f"memory access at {address:#x} (size {size}) out of range")


def _set_esp(machine, new_esp: int) -> None:
    if new_esp < machine.stack_base:
        _overflow(machine, new_esp)
    machine.esp = new_esp
    if new_esp < machine.min_esp:
        machine.min_esp = new_esp


# ---------------------------------------------------------------------------
# Stage 1: machine-independent decode (cached per program)
# ---------------------------------------------------------------------------


class DecodedFunction:
    __slots__ = ("name", "factories", "body_len")

    def __init__(self, name: str, factories: list, body_len: int) -> None:
        self.name = name
        self.factories = factories
        self.body_len = body_len


class DecodedProgram:
    """Per-instruction closure factories for one ``AsmProgram``."""

    __slots__ = ("program", "functions")

    def __init__(self, program: asm.AsmProgram) -> None:
        self.program = program
        self.functions: dict[str, DecodedFunction] = {}
        for fid, (name, function) in enumerate(program.functions.items()):
            factories = [
                _decode_instr(instr, pc, fid, function)
                for pc, instr in enumerate(function.body)]
            factories.append(_make_fell_off(name))
            self.functions[name] = DecodedFunction(
                name, factories, len(function.body))


_DECODE_CACHE: "WeakKeyDictionary[asm.AsmProgram, DecodedProgram]" = \
    WeakKeyDictionary()


def decode_program(program: asm.AsmProgram) -> DecodedProgram:
    """Decode ``program`` (cached: each program is decoded at most once)."""
    decoded = _DECODE_CACHE.get(program)
    if decoded is None:
        if obs.enabled:
            obs.add("decode.asm.cache.misses")
            with obs.span("decode.asm"):
                decoded = DecodedProgram(program)
        else:
            decoded = DecodedProgram(program)
        _DECODE_CACHE[program] = decoded
    elif obs.enabled:
        obs.add("decode.asm.cache.hits")
    return decoded


def _make_fell_off(name: str):
    """Sentinel op appended after the body (legacy: pc past the end)."""
    def factory(machine, ctx):
        def op(pc):
            raise DynamicError(f"{name}: fell off the end of the code")
        return op
    return factory


def _raising(make_error):
    """A factory whose op defers a decode-detected error to execution time
    (so programs that never reach the bad instruction behave as before)."""
    def factory(machine, ctx):
        def op(pc):
            raise make_error()
        return op
    return factory


def _decode_instr(instr: asm.PInstr, pc: int, fid: int,
                  function: asm.AsmFunction):
    """One instruction -> factory(machine, ctx) -> op(pc) closure."""
    if isinstance(instr, asm.Plabel):
        def factory(machine, ctx):
            def op(pc):
                return pc + 1
            return op
        return factory

    if isinstance(instr, asm.Pmovimm):
        d = IREG_INDEX[instr.dest]
        v = _wrap(instr.value)

        def factory(machine, ctx, d=d, v=v):
            ir = machine.iregs.array

            def op(pc, ir=ir, d=d, v=v):
                ir[d] = v
                return pc + 1
            return op
        return factory

    if isinstance(instr, asm.Pmovfimm):
        d = FREG_INDEX[instr.dest]
        v = instr.value

        def factory(machine, ctx, d=d, v=v):
            fr = machine.fregs.array

            def op(pc, fr=fr, d=d, v=v):
                fr[d] = v
                return pc + 1
            return op
        return factory

    if isinstance(instr, asm.Pmov):
        d, s = IREG_INDEX[instr.dest], IREG_INDEX[instr.src]

        def factory(machine, ctx, d=d, s=s):
            ir = machine.iregs.array

            def op(pc, ir=ir, d=d, s=s):
                ir[d] = ir[s]
                return pc + 1
            return op
        return factory

    if isinstance(instr, asm.Pmovf):
        d, s = FREG_INDEX[instr.dest], FREG_INDEX[instr.src]

        def factory(machine, ctx, d=d, s=s):
            fr = machine.fregs.array

            def op(pc, fr=fr, d=d, s=s):
                fr[d] = fr[s]
                return pc + 1
            return op
        return factory

    if isinstance(instr, asm.Plea):
        return _decode_lea(instr)

    if isinstance(instr, asm.Punop):
        return _decode_unop(instr)

    if isinstance(instr, asm.Pfneg):
        r = FREG_INDEX[instr.reg]

        def factory(machine, ctx, r=r):
            fr = machine.fregs.array

            def op(pc, fr=fr, r=r):
                fr[r] = -fr[r]
                return pc + 1
            return op
        return factory

    if isinstance(instr, asm.Pcvt):
        return _decode_cvt(instr)

    if isinstance(instr, asm.Pbinop):
        return _decode_binop(instr)

    if isinstance(instr, asm.Pbinopf):
        return _decode_binopf(instr)

    if isinstance(instr, asm.Pcmpf):
        return _decode_cmpf(instr)

    if isinstance(instr, asm.Pload):
        return _decode_load(instr)

    if isinstance(instr, asm.Pstore):
        return _decode_store(instr)

    if isinstance(instr, asm.Pespadd):
        return _decode_espadd(instr)

    if isinstance(instr, asm.Pjmp):
        target = function.labels.get(instr.label)
        if target is None:
            label = instr.label
            return _raising(lambda label=label: KeyError(label))

        def factory(machine, ctx, target=target):
            def op(pc, target=target):
                return target
            return op
        return factory

    if isinstance(instr, asm.Pjcc):
        target = function.labels.get(instr.label)
        if target is None:
            label = instr.label
            return _raising(lambda label=label: KeyError(label))
        r = IREG_INDEX[instr.reg]

        def factory(machine, ctx, r=r, target=target):
            ir = machine.iregs.array

            def op(pc, ir=ir, r=r, target=target):
                return target if ir[r] else pc + 1
            return op
        return factory

    if isinstance(instr, asm.Pcall):
        return _decode_call(instr, pc, fid)

    if isinstance(instr, asm.Pret):
        return _decode_ret()

    if isinstance(instr, asm.Pbuiltin):
        return _decode_builtin(instr)

    rep = repr(instr)
    return _raising(
        lambda rep=rep: DynamicError(f"unknown instruction {rep}"))


# -- addressing ---------------------------------------------------------------


def _address_maker(addr: asm.Addr):
    """Returns ``make(machine) -> compute(ir) -> int`` for one address,
    or the string ``"unknown-symbol"``/``"unknown-mode"`` markers."""
    if isinstance(addr, asm.AStack):
        offset = addr.offset

        def make(machine, offset=offset):
            def compute(ir, m=machine, offset=offset):
                return m.esp + offset
            return compute
        return make
    if isinstance(addr, asm.ABase):
        reg, offset = IREG_INDEX[addr.reg], addr.offset

        def make(machine, reg=reg, offset=offset):
            def compute(ir, reg=reg, offset=offset):
                return (ir[reg] + offset) & _MASK
            return compute
        return make
    if isinstance(addr, asm.AGlobal):
        symbol, offset = addr.symbol, addr.offset

        def make(machine, symbol=symbol, offset=offset):
            base = machine.global_addr.get(symbol)
            if base is None:
                def compute(ir, symbol=symbol):
                    raise UndefinedBehaviorError(
                        f"unknown symbol {symbol!r}")
                return compute
            absolute = base + offset

            def compute(ir, absolute=absolute):
                return absolute
            return compute
        return make
    rep = repr(addr)

    def make(machine, rep=rep):
        def compute(ir, rep=rep):
            raise DynamicError(f"unknown addressing mode {rep}")
        return compute
    return make


def _decode_lea(instr: asm.Plea):
    d = IREG_INDEX[instr.dest]
    make_addr = _address_maker(instr.addr)

    def factory(machine, ctx, d=d, make_addr=make_addr):
        ir = machine.iregs.array
        compute = make_addr(machine)

        def op(pc, ir=ir, d=d, compute=compute):
            ir[d] = compute(ir) & _MASK
            return pc + 1
        return op
    return factory


# -- ALU ----------------------------------------------------------------------


_UNOPS: dict[str, Callable[[int], int]] = {
    "neg": ints.neg,
    "notint": ints.not_,
    "notbool": lambda v: 0 if v != 0 else 1,
    "cast8signed": ints.sign_extend8,
    "cast8unsigned": ints.wrap8,
    "cast16signed": ints.sign_extend16,
    "cast16unsigned": ints.wrap16,
}


def _decode_unop(instr: asm.Punop):
    handler = _UNOPS.get(instr.op)
    if handler is None:
        opname = instr.op
        return _raising(
            lambda opname=opname: DynamicError(f"unknown unary op {opname!r}"))
    r = IREG_INDEX[instr.reg]

    def factory(machine, ctx, r=r, handler=handler):
        ir = machine.iregs.array

        def op(pc, ir=ir, r=r, handler=handler):
            ir[r] = handler(ir[r])
            return pc + 1
        return op
    return factory


def _decode_binop(instr: asm.Pbinop):
    from repro.asm.machine import _INT_BINOPS

    opname = instr.op
    handler = _INT_BINOPS.get(opname)
    if handler is None:
        return _raising(
            lambda opname=opname: DynamicError(
                f"unknown integer op {opname!r}"))
    d, s = IREG_INDEX[instr.dest], IREG_INDEX[instr.src]

    # The commonest wrap-only ops are inlined; the rest go through the
    # shared handler table (one call, same semantics as the legacy loop).
    if opname == "add":
        def factory(machine, ctx, d=d, s=s):
            ir = machine.iregs.array

            def op(pc, ir=ir, d=d, s=s):
                ir[d] = (ir[d] + ir[s]) & _MASK
                return pc + 1
            return op
        return factory
    if opname == "sub":
        def factory(machine, ctx, d=d, s=s):
            ir = machine.iregs.array

            def op(pc, ir=ir, d=d, s=s):
                ir[d] = (ir[d] - ir[s]) & _MASK
                return pc + 1
            return op
        return factory
    if opname in ("and", "or", "xor"):
        import operator
        fn = {"and": operator.and_, "or": operator.or_,
              "xor": operator.xor}[opname]

        def factory(machine, ctx, d=d, s=s, fn=fn):
            ir = machine.iregs.array

            def op(pc, ir=ir, d=d, s=s, fn=fn):
                ir[d] = fn(ir[d], ir[s])
                return pc + 1
            return op
        return factory

    def factory(machine, ctx, d=d, s=s, handler=handler):
        ir = machine.iregs.array

        def op(pc, ir=ir, d=d, s=s, handler=handler):
            ir[d] = handler(ir[d], ir[s])
            return pc + 1
        return op
    return factory


def _decode_binopf(instr: asm.Pbinopf):
    d, s = FREG_INDEX[instr.dest], FREG_INDEX[instr.src]
    opname = instr.op
    if opname == "addf":
        def factory(machine, ctx, d=d, s=s):
            fr = machine.fregs.array

            def op(pc, fr=fr, d=d, s=s):
                fr[d] = fr[d] + fr[s]
                return pc + 1
            return op
        return factory
    if opname == "subf":
        def factory(machine, ctx, d=d, s=s):
            fr = machine.fregs.array

            def op(pc, fr=fr, d=d, s=s):
                fr[d] = fr[d] - fr[s]
                return pc + 1
            return op
        return factory
    if opname == "mulf":
        def factory(machine, ctx, d=d, s=s):
            fr = machine.fregs.array

            def op(pc, fr=fr, d=d, s=s):
                fr[d] = fr[d] * fr[s]
                return pc + 1
            return op
        return factory
    if opname == "divf":
        def factory(machine, ctx, d=d, s=s):
            fr = machine.fregs.array

            def op(pc, fr=fr, d=d, s=s):
                a, b = fr[d], fr[s]
                if b == 0.0:
                    if a == 0.0 or a != a:
                        fr[d] = float("nan")
                    else:
                        fr[d] = float("inf") if (a > 0) == (b >= 0) \
                            else float("-inf")
                else:
                    fr[d] = a / b
                return pc + 1
            return op
        return factory
    return _raising(
        lambda opname=opname: DynamicError(f"unknown float op {opname!r}"))


def _decode_cmpf(instr: asm.Pcmpf):
    from repro.asm.machine import _FLOAT_CMP

    opname = instr.op
    handler = _FLOAT_CMP.get(opname)
    if handler is None:
        return _raising(
            lambda opname=opname: DynamicError(
                f"unknown float compare {opname!r}"))
    d = IREG_INDEX[instr.dest]
    a, b = FREG_INDEX[instr.src1], FREG_INDEX[instr.src2]

    def factory(machine, ctx, d=d, a=a, b=b, handler=handler):
        ir = machine.iregs.array
        fr = machine.fregs.array

        def op(pc, ir=ir, fr=fr, d=d, a=a, b=b, handler=handler):
            ir[d] = 1 if handler(fr[a], fr[b]) else 0
            return pc + 1
        return op
    return factory


def _decode_cvt(instr: asm.Pcvt):
    opname = instr.op
    if opname == "intoffloat":
        d, s = IREG_INDEX[instr.dest], FREG_INDEX[instr.src]

        def factory(machine, ctx, d=d, s=s):
            ir = machine.iregs.array
            fr = machine.fregs.array

            def op(pc, ir=ir, fr=fr, d=d, s=s,
                   conv=ints.of_float_signed):
                ir[d] = conv(fr[s])
                return pc + 1
            return op
        return factory
    if opname == "uintofloat":  # pragma: no cover - not emitted
        pass
    if opname == "uintoffloat":
        d, s = IREG_INDEX[instr.dest], FREG_INDEX[instr.src]

        def factory(machine, ctx, d=d, s=s):
            ir = machine.iregs.array
            fr = machine.fregs.array

            def op(pc, ir=ir, fr=fr, d=d, s=s):
                value = fr[s]
                if value != value:
                    raise UndefinedBehaviorError("float-to-uint of NaN")
                truncated = int(value)
                if truncated < 0 or truncated > ints.MAX_UNSIGNED:
                    raise UndefinedBehaviorError(
                        f"float-to-uint out of range: {value!r}")
                ir[d] = truncated
                return pc + 1
            return op
        return factory
    if opname == "floatofint":
        d, s = FREG_INDEX[instr.dest], IREG_INDEX[instr.src]

        def factory(machine, ctx, d=d, s=s):
            ir = machine.iregs.array
            fr = machine.fregs.array

            def op(pc, ir=ir, fr=fr, d=d, s=s,
                   conv=ints.to_float_signed):
                fr[d] = conv(ir[s])
                return pc + 1
            return op
        return factory
    if opname == "floatofuint":
        d, s = FREG_INDEX[instr.dest], IREG_INDEX[instr.src]

        def factory(machine, ctx, d=d, s=s):
            ir = machine.iregs.array
            fr = machine.fregs.array

            def op(pc, ir=ir, fr=fr, d=d, s=s,
                   conv=ints.to_float_unsigned):
                fr[d] = conv(ir[s])
                return pc + 1
            return op
        return factory
    return _raising(
        lambda opname=opname: DynamicError(f"unknown conversion {opname!r}"))


# -- memory -------------------------------------------------------------------


def _decode_load(instr: asm.Pload):
    chunk = instr.chunk
    make_addr = _address_maker(instr.addr)
    size = chunk.size
    alignment = chunk.alignment

    if chunk.is_float:
        d = FREG_INDEX[instr.dest]

        def factory(machine, ctx, d=d, make_addr=make_addr):
            fr = machine.fregs.array
            ir = machine.iregs.array
            mem = machine.memory
            memlen = len(mem)
            compute = make_addr(machine)

            def op(pc, fr=fr, ir=ir, mem=mem, memlen=memlen, d=d,
                   compute=compute, unpack=_F64.unpack_from):
                a = compute(ir)
                if a < GLOBAL_BASE or a + 8 > memlen:
                    _oob(a, 8)
                if a & 3:
                    raise MemoryError_(f"misaligned load at {a:#x}")
                fr[d] = unpack(mem, a)[0]
                return pc + 1
            return op
        return factory

    d = IREG_INDEX[instr.dest]
    if size == 4:
        def factory(machine, ctx, d=d, make_addr=make_addr):
            ir = machine.iregs.array
            mem = machine.memory
            memlen = len(mem)
            compute = make_addr(machine)

            def op(pc, ir=ir, mem=mem, memlen=memlen, d=d,
                   compute=compute, from_bytes=int.from_bytes):
                a = compute(ir)
                if a < GLOBAL_BASE or a + 4 > memlen:
                    _oob(a, 4)
                if a & 3:
                    raise MemoryError_(f"misaligned load at {a:#x}")
                ir[d] = from_bytes(mem[a:a + 4], "little")
                return pc + 1
            return op
        return factory

    # Narrow integer chunks: read the raw bytes, then widen exactly as the
    # chunk decoder would (sign-extension into the unsigned representation).
    decoder = {1: {True: ints.sign_extend8, False: ints.wrap8},
               2: {True: ints.sign_extend16, False: ints.wrap16}}[
        size][chunk.value.endswith("s")]

    def factory(machine, ctx, d=d, make_addr=make_addr, size=size,
                alignment=alignment, decoder=decoder):
        ir = machine.iregs.array
        mem = machine.memory
        memlen = len(mem)
        compute = make_addr(machine)
        align_mask = alignment - 1

        def op(pc, ir=ir, mem=mem, memlen=memlen, d=d, compute=compute,
               size=size, align_mask=align_mask, decoder=decoder,
               from_bytes=int.from_bytes):
            a = compute(ir)
            if a < GLOBAL_BASE or a + size > memlen:
                _oob(a, size)
            if a & align_mask:
                raise MemoryError_(f"misaligned load at {a:#x}")
            ir[d] = decoder(from_bytes(mem[a:a + size], "little"))
            return pc + 1
        return op
    return factory


def _decode_store(instr: asm.Pstore):
    chunk = instr.chunk
    make_addr = _address_maker(instr.addr)
    size = chunk.size

    if chunk.is_float:
        s = FREG_INDEX[instr.src]

        def factory(machine, ctx, s=s, make_addr=make_addr):
            fr = machine.fregs.array
            ir = machine.iregs.array
            mem = machine.memory
            memlen = len(mem)
            compute = make_addr(machine)

            def op(pc, fr=fr, ir=ir, mem=mem, memlen=memlen, s=s,
                   compute=compute, pack=_F64.pack_into):
                a = compute(ir)
                if a < GLOBAL_BASE or a + 8 > memlen:
                    _oob(a, 8)
                if a & 3:
                    raise MemoryError_(f"misaligned store at {a:#x}")
                pack(mem, a, float(fr[s]))
                return pc + 1
            return op
        return factory

    s = IREG_INDEX[instr.src]
    if size == 4:
        def factory(machine, ctx, s=s, make_addr=make_addr):
            ir = machine.iregs.array
            mem = machine.memory
            memlen = len(mem)
            compute = make_addr(machine)

            def op(pc, ir=ir, mem=mem, memlen=memlen, s=s,
                   compute=compute):
                a = compute(ir)
                if a < GLOBAL_BASE or a + 4 > memlen:
                    _oob(a, 4)
                if a & 3:
                    raise MemoryError_(f"misaligned store at {a:#x}")
                mem[a:a + 4] = (ir[s] & _MASK).to_bytes(4, "little")
                return pc + 1
            return op
        return factory

    align_mask = chunk.alignment - 1
    byte_mask = (1 << (8 * size)) - 1

    def factory(machine, ctx, s=s, make_addr=make_addr, size=size,
                align_mask=align_mask, byte_mask=byte_mask):
        ir = machine.iregs.array
        mem = machine.memory
        memlen = len(mem)
        compute = make_addr(machine)

        def op(pc, ir=ir, mem=mem, memlen=memlen, s=s, compute=compute,
               size=size, align_mask=align_mask, byte_mask=byte_mask):
            a = compute(ir)
            if a < GLOBAL_BASE or a + size > memlen:
                _oob(a, size)
            if a & align_mask:
                raise MemoryError_(f"misaligned store at {a:#x}")
            mem[a:a + size] = (ir[s] & byte_mask).to_bytes(size, "little")
            return pc + 1
        return op
    return factory


# -- control ------------------------------------------------------------------


def _decode_espadd(instr: asm.Pespadd):
    delta = instr.delta
    if delta >= 0:
        # Releasing stack can never overflow (ESP is >= base already) and
        # can never lower the watermark.
        def factory(machine, ctx, delta=delta):
            def op(pc, m=machine, delta=delta):
                m.esp += delta
                return pc + 1
            return op
        return factory

    def factory(machine, ctx, delta=delta):
        base = machine.stack_base

        def op(pc, m=machine, delta=delta, base=base):
            esp = m.esp + delta
            if esp < base:
                _overflow(m, esp)
            m.esp = esp
            if esp < m.min_esp:
                m.min_esp = esp
            return pc + 1
        return op
    return factory


def _decode_call(instr: asm.Pcall, pc: int, fid: int):
    symbol = instr.symbol
    return_address = CODE_BASE + fid * FUNCTION_STRIDE + (pc + 1)
    ra_bytes = return_address.to_bytes(4, "little")

    def factory(machine, ctx, symbol=symbol, ra_bytes=ra_bytes):
        func_ops = ctx["func_ops"]
        callee_ops = func_ops.get(symbol)
        if callee_ops is None:
            def op(pc, symbol=symbol):
                raise DynamicError(f"call to unknown symbol {symbol!r} "
                                   "(externals use builtins)")
            return op
        mem = machine.memory
        memlen = len(mem)
        base = machine.stack_base

        def op(pc, m=machine, mem=mem, memlen=memlen, base=base,
               callee_ops=callee_ops, ra_bytes=ra_bytes):
            esp = m.esp - 4
            if esp < base:
                _overflow(m, esp)
            m.esp = esp
            if esp < m.min_esp:
                m.min_esp = esp
            if esp + 4 > memlen:
                _oob(esp, 4)
            if esp & 3:
                raise MemoryError_(f"misaligned store at {esp:#x}")
            mem[esp:esp + 4] = ra_bytes
            m._ops = callee_ops
            m._pc = 0
            return None
        return op
    return factory


def _decode_ret():
    def factory(machine, ctx):
        mem = machine.memory
        memlen = len(mem)
        ir = machine.iregs.array
        ops_by_id = ctx["ops_by_id"]
        names_by_id = ctx["names_by_id"]
        lens_by_id = ctx["lens_by_id"]
        n_functions = len(ops_by_id)

        def op(pc, m=machine, mem=mem, memlen=memlen, ir=ir,
               ops_by_id=ops_by_id, names_by_id=names_by_id,
               lens_by_id=lens_by_id, n_functions=n_functions,
               from_bytes=int.from_bytes):
            esp = m.esp
            if esp < GLOBAL_BASE or esp + 4 > memlen:
                _oob(esp, 4)
            if esp & 3:
                raise MemoryError_(f"misaligned load at {esp:#x}")
            address = from_bytes(mem[esp:esp + 4], "little")
            m.esp = esp + 4
            if address == HALT_ADDRESS:
                m.done = True
                m.return_code = _to_signed(ir[EAX])
                return None
            if address < CODE_BASE:
                raise DynamicError(
                    f"return to non-code address {address:#x}")
            fid, index = divmod(address - CODE_BASE, FUNCTION_STRIDE)
            if fid >= n_functions:
                raise DynamicError(f"return to unknown function id {fid}")
            if index > lens_by_id[fid]:
                raise DynamicError(
                    f"{names_by_id[fid]}: fell off the end of the code")
            m._ops = ops_by_id[fid]
            m._pc = index
            return None
        return op
    return factory


def _decode_builtin(instr: asm.Pbuiltin):
    name = instr.name
    arg_specs = tuple(zip(instr.arg_is_float,
                          [FREG_INDEX[r] if f else IREG_INDEX[r]
                           for r, f in zip(instr.args, instr.arg_is_float)]))
    dest = instr.dest
    dest_is_float = instr.dest_is_float
    dest_index = None
    if dest is not None:
        dest_index = FREG_INDEX[dest] if dest_is_float else IREG_INDEX[dest]

    def factory(machine, ctx, name=name, arg_specs=arg_specs,
                dest_index=dest_index, dest_is_float=dest_is_float,
                has_dest=dest is not None):
        ir = machine.iregs.array
        fr = machine.fregs.array

        def op(pc, m=machine, ir=ir, fr=fr, name=name, arg_specs=arg_specs,
               dest_index=dest_index, dest_is_float=dest_is_float,
               has_dest=has_dest):
            args = [VFloat(fr[i]) if is_float else VInt(ir[i])
                    for is_float, i in arg_specs]
            result, event = call_external(name, args, alloc=m._malloc,
                                          output=m.output)
            if has_dest:
                if dest_is_float:
                    if not isinstance(result, VFloat):
                        raise DynamicError(
                            f"builtin {name} did not return a float")
                    fr[dest_index] = result.value
                else:
                    if not isinstance(result, VInt):
                        raise DynamicError(
                            f"builtin {name} did not return an integer")
                    ir[dest_index] = result.value
            if event is not None:
                m._trace.append(event)
            return pc + 1
        return op
    return factory


# ---------------------------------------------------------------------------
# Stage 2: bind against one machine
# ---------------------------------------------------------------------------


def bind_machine(machine) -> None:
    """Instantiate the (cached) decoded program against ``machine``.

    Stores ``machine._bound = (func_ops, ops_by_id)``: closures over this
    machine's register arrays, memory and stack base.  Call targets are
    resolved through list identity — the per-function op lists are created
    empty first, so mutually recursive calls capture the right list before
    it is filled.
    """
    decoded = decode_program(machine.program)
    program = machine.program
    func_ops: dict[str, list] = {name: [] for name in program.functions}
    ops_by_id = [func_ops[name] for name in program.functions]
    names_by_id = list(program.functions)
    lens_by_id = [decoded.functions[name].body_len
                  for name in program.functions]
    ctx = {"func_ops": func_ops, "ops_by_id": ops_by_id,
           "names_by_id": names_by_id, "lens_by_id": lens_by_id}
    for name, dfn in decoded.functions.items():
        func_ops[name].extend(factory(machine, ctx)
                              for factory in dfn.factories)
    machine._bound = (func_ops, ops_by_id)


# ---------------------------------------------------------------------------
# The decoded run loop
# ---------------------------------------------------------------------------


def run_decoded(machine, fuel: int) -> Behavior:
    """Run a ``decoded=True`` machine to a behavior (legacy-equivalent)."""
    trace: list = []
    machine._trace = trace
    steps = 0
    try:
        machine.start()
        func_ops, _ops_by_id = machine._bound
        ops = func_ops[machine.program.main]
        pc = 0
        try:
            while steps < fuel:
                steps += 1
                npc = ops[pc](pc)
                if npc is None:
                    if machine.done:
                        break
                    ops = machine._ops
                    pc = machine._pc
                else:
                    pc = npc
        finally:
            machine.steps += steps
    except DynamicError as exc:
        return GoesWrong(trace, reason=str(exc))
    if not machine.done:
        return Diverges(trace)
    assert machine.return_code is not None
    return Converges(trace, machine.return_code)
