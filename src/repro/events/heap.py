"""Heap accounting over event traces — the paper's §8 outlook, demonstrated.

The paper's framework is explicitly designed so that "many of the
developed techniques can be applied to derive bounds for resources such
as heap memory".  The machinery is the same: a resource metric prices
events, and the weight of a trace bounds the consumption of the compiled
code.  This module instantiates it for the heap:

* ``malloc`` emits an observable ``malloc(size |-> 0)`` event (the size
  is the same at every compilation level, so trace preservation is
  untouched — only the returned pointer differs between the block memory
  and the flat arena, and it is deliberately *not* part of the event);
* a :class:`HeapMetric` prices ``malloc(size)`` at its aligned size and
  everything else at 0.  Since the arena never frees, the valuation is
  monotone and the weight equals the final valuation;
* the ASMsz machine's arena pointer provides the measured counterpart,
  so ``W_heap(trace) == measured arena usage`` is a checkable end-to-end
  statement — the heap analogue of the stack story.

A static heap *analyzer* (inferring the sizes) is genuine future work,
as in the paper; this module provides the trace/metric substrate it
would target.
"""

from __future__ import annotations

from typing import Iterable

from repro.c.types import align_up
from repro.events.trace import Event, IOEvent, weight_fold

MALLOC_EVENT = "malloc"
ARENA_ALIGNMENT = 8


class HeapMetric:
    """Prices ``malloc(size)`` events at their arena footprint."""

    def __init__(self, alignment: int = ARENA_ALIGNMENT) -> None:
        self.alignment = alignment

    def __call__(self, event: Event) -> int:
        if isinstance(event, IOEvent) and event.name == MALLOC_EVENT:
            (size,) = event.args
            return align_up(max(int(size), 1), self.alignment)
        return 0


def heap_usage(trace: Iterable[Event],
               alignment: int = ARENA_ALIGNMENT) -> int:
    """Total arena bytes the trace's allocations consume.

    The arena never frees, so the valuation is monotone and the total
    equals the weight; both come from the one shared streaming fold.
    """
    return weight_fold(HeapMetric(alignment), trace).total


def allocation_sizes(trace: Iterable[Event]) -> list[int]:
    """The raw requested sizes, in order."""
    return [int(event.args[0]) for event in trace
            if isinstance(event, IOEvent) and event.name == MALLOC_EVENT]
