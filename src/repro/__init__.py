"""repro: end-to-end verification of stack-space bounds for C programs.

A from-scratch Python reproduction of "End-to-End Verification of
Stack-Space Bounds for C Programs" (Carbonneaux, Hoffmann, Ramananandro,
Shao — PLDI 2014): a quantitative-CompCert-style compiler from a C subset
to a finite-stack x86-like assembly, a quantitative Hoare logic with an
executable derivation checker, a certified automatic stack analyzer, and
the measurement infrastructure reproducing the paper's evaluation.

Quickstart::

    from repro import verify_stack_bounds

    bounds = verify_stack_bounds(open("prog.c").read())
    print(bounds.all_bytes())          # verified per-function byte bounds
    behavior, machine = bounds.compilation.run(
        stack_bytes=bounds.stack_requirement() + 4)   # cannot overflow

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.analyzer import StackAnalyzer
from repro.driver import (Compilation, CompilerOptions, VerifiedBounds,
                          compile_c, compile_clight, compile_frontend,
                          verify_stack_bounds)
from repro.events import (CallEvent, Converges, Diverges, GoesWrong, IOEvent,
                          ReturnEvent, StackMetric, prune, weight)
from repro.measure import measure_c_program, measure_compilation

__version__ = "0.1.0"

__all__ = [
    "compile_c",
    "compile_clight",
    "compile_frontend",
    "verify_stack_bounds",
    "Compilation",
    "CompilerOptions",
    "VerifiedBounds",
    "StackAnalyzer",
    "StackMetric",
    "measure_c_program",
    "measure_compilation",
    "CallEvent",
    "ReturnEvent",
    "IOEvent",
    "Converges",
    "Diverges",
    "GoesWrong",
    "prune",
    "weight",
    "__version__",
]
