"""Auditing an OS kernel's stack usage: the CertiKOS scenario.

The paper's main application: CertiKOS preallocates its kernel stack, so
proving the absence of stack overflow is part of the reliability story.
This example audits both kernel modules of the suite — virtual-memory
management (vmm.c) and process management (proc.c) — and produces the
artifacts an OS integrator needs:

* a per-function verified bound table (what each entry point may consume),
* the kernel-wide stack budget (the bound for the init path),
* a demonstrated run on a stack of exactly that size, plus the proof
  that one word less overflows.

    python examples/certikos_audit.py
"""

from repro.analyzer import StackAnalyzer
from repro.driver import compile_c
from repro.events.trace import Converges, GoesWrong
from repro.programs.loader import load_source

MODULES = ["certikos/vmm.c", "certikos/proc.c"]


def audit_module(path):
    print(f"== {path} " + "=" * (60 - len(path)))
    compilation = compile_c(load_source(path), filename=path)
    analysis = StackAnalyzer(compilation.clight).analyze()
    report = analysis.check()
    print(f"analyzer: {len(analysis.functions)} functions bounded in "
          f"{analysis.elapsed_seconds * 1000:.1f} ms; derivations "
          f"re-checked ({report.exact_conditions} exact side conditions)")

    metric = compilation.metric
    print(f"\n{'function':16s} {'SF(f)':>6s} {'M(f)':>6s} "
          f"{'verified bound':>15s}")
    for name in sorted(analysis.functions):
        sf = compilation.frame_sizes[name]
        bound = analysis.bound_bytes(name, metric)
        print(f"{name:16s} {sf:6d} {metric.cost(name):6d} {bound:12d} B")

    budget = analysis.bound_bytes("main", metric)
    print(f"\nkernel stack budget (init path): {budget} bytes")

    # Theorem 1, demonstrated: exactly enough vs. one word short.
    ok, machine = compilation.run(stack_bytes=budget + 4, fuel=200_000_000)
    assert isinstance(ok, Converges)
    print(f"runs on a {budget}-byte stack: yes "
          f"(watermark {machine.measured_stack_usage} bytes)")
    short, _machine = compilation.run(stack_bytes=budget - 4,
                                      fuel=200_000_000)
    verdict = "overflows" if isinstance(short, GoesWrong) else "survives"
    print(f"runs on a {budget - 8}-byte stack: {verdict}\n")
    return budget


def main():
    budgets = {path: audit_module(path) for path in MODULES}
    total = max(budgets.values())
    print("=" * 66)
    print(f"A shared kernel stack of {total} bytes covers every audited "
          "module's init path, with machine-checked derivations behind "
          "each number.")


if __name__ == "__main__":
    main()
