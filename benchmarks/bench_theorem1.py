"""Benchmark for Theorem 1: verified bounds vs. minimal working stacks.

For each automatically analyzable program, report

* the verified bound ``sz`` for ``main``;
* that the program converges on a stack of exactly ``sz + 4`` bytes
  (Theorem 1's guarantee);
* the minimal word-aligned stack on which it converges (found by binary
  search) — always exactly ``sz - 4`` on this suite, the paper's
  "4 bytes" accuracy claim read from the other side.

    python benchmarks/bench_theorem1.py
    pytest benchmarks/bench_theorem1.py --benchmark-only
"""

import pytest

from repro.analyzer import StackAnalyzer
from repro.driver import compile_c
from repro.events.trace import Converges, GoesWrong
from repro.measure import minimal_stack
from repro.programs.catalog import AUTO_ANALYZABLE
from repro.programs.loader import load_source

FUEL = 200_000_000


def theorem1_row(path):
    compilation = compile_c(load_source(path), filename=path)
    analysis = StackAnalyzer(compilation.clight).analyze()
    sz = analysis.bound_bytes("main", compilation.metric)
    behavior, machine = compilation.run(stack_bytes=sz + 4, fuel=FUEL)
    assert isinstance(behavior, Converges), f"{path} overflowed at its bound"
    minimal = minimal_stack(compilation, sz, fuel=FUEL)
    below, _m = compilation.run(stack_bytes=minimal + 4 - 4, fuel=FUEL)
    return {
        "path": path,
        "bound": sz,
        "minimal": minimal,
        "overflow_below_minimal": isinstance(below, GoesWrong),
    }


def generate_rows():
    return [theorem1_row(path) for path in AUTO_ANALYZABLE]


def print_rows(rows):
    print()
    print(f"{'File':28s}  {'bound sz':>9s}  {'min stack':>9s}  gap")
    print("-" * 60)
    for row in rows:
        print(f"{row['path']:28s}  {row['bound']:9d}  {row['minimal']:9d}  "
              f"{row['bound'] - row['minimal']}")


@pytest.mark.table
@pytest.mark.parametrize("path", AUTO_ANALYZABLE)
def test_theorem1_per_program(benchmark, path):
    row = benchmark.pedantic(theorem1_row, args=(path,), rounds=1,
                             iterations=1)
    assert row["bound"] - row["minimal"] == 4
    assert row["overflow_below_minimal"]


if __name__ == "__main__":
    print_rows(generate_rows())
