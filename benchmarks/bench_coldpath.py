#!/usr/bin/env python3
"""Cold-path benchmark: cold vs restart-warm vs hot request latency.

Boots the serving daemon as a *subprocess* (an honest restart: new
process, empty warm LRU, empty codegen cache — only the on-disk store
survives) in three phases over the benchmark catalog:

* **cold** — a fresh store directory: every stage misses, the full
  compile + analyze + check pipeline runs per request;
* **restart-warm** — a new daemon on the same store directory: every
  stage replays from the persisted store, and a probe request
  ``compile()``s the *persisted* codegen source instead of regenerating
  it (exactly zero ``codegen.compile_seconds`` observations);
* **hot** — the same daemon again: store hits plus live warm state.

Plus a batch-vs-serial throughput comparison against the warm daemon:
the same item list as one ``POST /batch`` versus sequential ``/verify``
round-trips.

Run standalone to refresh the committed baseline::

    python benchmarks/bench_coldpath.py [-o BENCH_coldpath.json]

CI runs the cheap regression gate only (one program, two daemon boots)::

    timeout 300 python benchmarks/bench_coldpath.py --check-floor

The gate holds the acceptance bar: restart-warm latency at least
``floor_restart_warm_speedup`` (3x) better than cold, and zero codegen
regenerations on the restarted daemon.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import shutil
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(HERE)
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.programs.loader import load_source                    # noqa: E402

BASELINE_PATH = os.path.join(HERE, "BENCH_coldpath.json")

#: The serving benchmark catalog: auto-analyzable, structurally varied.
PROGRAMS = ("mibench/bitcount.c", "mibench/crc32.c",
            "mibench/dijkstra.c", "mibench/fft.c")

#: Program for the CI floor check and the codegen-artifact probe.
FLOOR_PROGRAM = "mibench/crc32.c"

#: The acceptance bar: restart-warm must beat cold by at least this.
FLOOR_SPEEDUP = 3.0


class Daemon:
    """One ``python -m repro serve`` subprocess on an ephemeral port."""

    def __init__(self, store_dir: str) -> None:
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO, "src") + os.pathsep \
            + env.get("PYTHONPATH", "")
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--jobs", "0", "--store-dir", store_dir],
            stderr=subprocess.PIPE, text=True, env=env, cwd=REPO)
        line = self.process.stderr.readline()
        if "serving certified bounds" not in line:
            self.process.kill()
            raise RuntimeError(f"daemon failed to boot: {line!r}")
        self.port = int(line.split("http://127.0.0.1:")[1].split()[0])

    def post(self, path: str, payload: dict) -> tuple[int, str]:
        request = urllib.request.Request(
            f"http://127.0.0.1:{self.port}{path}",
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request, timeout=300) as response:
                return response.status, response.read().decode()
        except urllib.error.HTTPError as error:
            return error.code, error.read().decode()

    def metrics(self) -> dict:
        with urllib.request.urlopen(
                f"http://127.0.0.1:{self.port}/metrics",
                timeout=30) as response:
            return json.loads(response.read())

    def stop(self) -> None:
        self.process.send_signal(signal.SIGTERM)
        try:
            self.process.wait(timeout=30)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait(timeout=10)


def _timed_verify(daemon: Daemon, path: str) -> float:
    payload = {"source": load_source(path), "filename": path}
    started = time.perf_counter()
    status, body = daemon.post("/verify", payload)
    elapsed = time.perf_counter() - started
    assert status == 200, f"{path}: {status}: {body[:200]}"
    return elapsed


def _probe(daemon: Daemon, path: str) -> dict:
    status, body = daemon.post("/verify", {
        "source": load_source(path), "filename": path, "probe": True})
    assert status == 200, f"probe {path}: {status}: {body[:200]}"
    return json.loads(body)["probe"]


def _codegen_compiles(daemon: Daemon) -> int:
    return daemon.metrics().get("histograms", {}) \
        .get("codegen.compile_seconds", {}).get("count", 0)


def _geomean(ratios: list[float]) -> float:
    return math.exp(sum(math.log(r) for r in ratios) / len(ratios))


def bench(programs=PROGRAMS) -> dict:
    store_dir = tempfile.mkdtemp(prefix="bench-coldpath-")
    out: dict = {"programs": {}}
    try:
        # Phase 1: cold — fresh store, every stage misses.
        daemon = Daemon(store_dir)
        cold = {path: _timed_verify(daemon, path) for path in programs}
        probe_cold = _probe(daemon, FLOOR_PROGRAM)
        cold_compiles = _codegen_compiles(daemon)
        daemon.stop()

        # Phase 2: restart-warm — new process, persisted store.
        daemon = Daemon(store_dir)
        warm = {path: _timed_verify(daemon, path) for path in programs}
        probe_warm = _probe(daemon, FLOOR_PROGRAM)
        warm_compiles = _codegen_compiles(daemon)

        # Phase 3: hot — same daemon, everything resident.
        hot = {path: _timed_verify(daemon, path) for path in programs}

        # Phase 4: batch vs serial throughput on the warm daemon.
        items = [{"source": load_source(path), "filename": path}
                 for path in programs] * 2
        started = time.perf_counter()
        for item in items:
            status, _body = daemon.post("/verify", dict(item))
            assert status == 200
        serial_s = time.perf_counter() - started
        started = time.perf_counter()
        status, body = daemon.post("/batch", {"items": items})
        batch_s = time.perf_counter() - started
        assert status == 200, body[:200]
        lines = [json.loads(line) for line in body.splitlines()]
        assert lines[0]["items"] == len(items)
        assert all(line["status"] == 200 for line in lines[1:-1])
        daemon.stop()
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)

    speedups = []
    for path in programs:
        speedup = cold[path] / warm[path]
        speedups.append(speedup)
        out["programs"][path] = {
            "cold_ms": round(cold[path] * 1e3, 2),
            "restart_warm_ms": round(warm[path] * 1e3, 2),
            "hot_ms": round(hot[path] * 1e3, 2),
            "restart_warm_speedup": round(speedup, 1),
        }
        print(f"  {path:24s} cold {cold[path]*1e3:8.1f}ms  "
              f"restart-warm {warm[path]*1e3:7.2f}ms  "
              f"hot {hot[path]*1e3:7.2f}ms  ({speedup:.0f}x)")
    out["restart_warm_speedup_geomean"] = round(_geomean(speedups), 1)
    out["codegen_artifact"] = {
        "cold_probe": probe_cold["codegen"],        # "generated"
        "restart_probe": probe_warm["codegen"],     # "store"
        "cold_compiles": cold_compiles,
        "restart_compiles": warm_compiles,          # must be 0
    }
    out["batch"] = {
        "items": len(items),
        "serial_s": round(serial_s, 4),
        "batch_s": round(batch_s, 4),
        "serial_items_per_s": round(len(items) / serial_s, 1),
        "batch_items_per_s": round(len(items) / batch_s, 1),
        "batch_speedup": round(serial_s / batch_s, 2),
    }
    print(f"  geomean restart-warm speedup: "
          f"{out['restart_warm_speedup_geomean']}x; "
          f"batch {out['batch']['batch_items_per_s']} items/s vs serial "
          f"{out['batch']['serial_items_per_s']} items/s "
          f"({out['batch']['batch_speedup']}x)")
    print(f"  codegen artifact: cold={probe_cold['codegen']} "
          f"({cold_compiles} compiles), "
          f"restart={probe_warm['codegen']} ({warm_compiles} compiles)")
    return out


def check_floor() -> int:
    with open(BASELINE_PATH) as handle:
        baseline = json.load(handle)
    floor = baseline["floor_restart_warm_speedup"]
    failures: list[str] = []
    store_dir = tempfile.mkdtemp(prefix="bench-coldpath-ci-")
    try:
        daemon = Daemon(store_dir)
        cold = _timed_verify(daemon, FLOOR_PROGRAM)
        probe_cold = _probe(daemon, FLOOR_PROGRAM)
        daemon.stop()
        daemon = Daemon(store_dir)
        warm = _timed_verify(daemon, FLOOR_PROGRAM)
        probe_warm = _probe(daemon, FLOOR_PROGRAM)
        compiles = _codegen_compiles(daemon)
        daemon.stop()
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)
    speedup = cold / warm
    print(f"cold {cold*1e3:.1f}ms, restart-warm {warm*1e3:.2f}ms "
          f"({speedup:.0f}x, floor {floor}x) on {FLOOR_PROGRAM}")
    print(f"codegen artifact: cold={probe_cold['codegen']}, "
          f"restart={probe_warm['codegen']}, "
          f"restart compiles={compiles}")
    if speedup < floor:
        failures.append(f"restart-warm speedup {speedup:.1f}x is below "
                        f"the {floor}x floor")
    if probe_cold["codegen"] != "generated":
        failures.append("cold probe did not generate "
                        f"({probe_cold['codegen']!r})")
    if probe_warm["codegen"] != "store":
        failures.append("restarted daemon did not compile the persisted "
                        f"source ({probe_warm['codegen']!r})")
    if compiles != 0:
        failures.append(f"restarted daemon regenerated codegen "
                        f"{compiles} time(s) (expected exactly 0)")
    for failure in failures:
        print(f"bench-coldpath: FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("OK")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default=BASELINE_PATH,
                        help="where to write the JSON baseline")
    parser.add_argument("--check-floor", action="store_true",
                        help="only verify the restart-warm speedup and the "
                             "zero-regeneration gate against the committed "
                             "floor (CI mode)")
    args = parser.parse_args(argv)

    if args.check_floor:
        return check_floor()

    results = {
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    print("serve: cold vs restart-warm vs hot request latency")
    results["coldpath"] = bench()
    # The acceptance bar, not a measured fraction: restart-warm replays
    # four store stages instead of compiling, so the measured margin is
    # orders of magnitude — 3x is the contract the docs promise.
    results["floor_restart_warm_speedup"] = FLOOR_SPEEDUP

    with open(args.output, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
