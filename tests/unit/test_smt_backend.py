"""Unit tests for the bounds-backend dispatch, the FM bugfix sweep and
the SMT cross-check (repro.logic.smt)."""

from fractions import Fraction

import pytest

from repro import obs
from repro.logic import bexpr as bx
from repro.logic import smt
from repro.logic.bexpr import (BConst, BMetric, BScale, badd, bmax, bound_le,
                               fm_bound_le)


def _satisfies(point, constraints):
    """Every ``sum(coeffs*x) + const <= 0`` row holds at ``point``."""
    return all(
        sum(Fraction(c) * point[n] for n, c in coeffs.items()) + const <= 0
        for coeffs, const in constraints)


class TestFmSolveWithoutNonnegRows:
    """_fm_solve must not assume an implicit var >= 0 (PR 10 bugfix)."""

    def test_point_in_a_negative_only_interval(self):
        # x + 5 <= 0, i.e. x <= -5: the old hard-coded lower bound of 0
        # returned a midpoint outside the system.
        constraints = [({"x": 1}, 5)]
        point = bx._fm_solve(constraints, ["x"])
        assert point is not None
        assert _satisfies(point, constraints)

    def test_unconstrained_variable_defaults_to_zero(self):
        point = bx._fm_solve([], ["x"])
        assert point == {"x": 0}

    def test_lower_bound_still_comes_from_neg_rows(self):
        # x >= 3 expressed as -x + 3 <= 0.
        constraints = [({"x": -1}, 3)]
        point = bx._fm_solve(constraints, ["x"])
        assert point is not None and point["x"] >= 3

    def test_infeasible_without_nonneg_is_reported(self):
        # x >= 3 and x <= 2.
        constraints = [({"x": -1}, 3), ({"x": 1}, -2)]
        assert bx._fm_solve(constraints, ["x"]) is None

    def test_two_variable_negative_orthant(self):
        # x <= -1, y <= x (both strictly negative; no nonneg rows).
        constraints = [({"x": 1}, 1), ({"y": 1, "x": -1}, 0)]
        point = bx._fm_solve(constraints, ["x", "y"])
        assert point is not None
        assert _satisfies(point, constraints)

    def test_callers_with_nonneg_rows_are_unchanged(self):
        # The shape _term_covered/find_violation_metric always emit:
        # explicit var >= 0 rows restore the historical behavior.
        constraints = [({"x": 1}, -10), ({"x": -1}, 0)]
        point = bx._fm_solve(constraints, ["x"])
        assert point is not None
        assert 0 <= point["x"] <= 10


class TestFmFeasibleShortCircuit:
    """Blowups must be declared before the pos x neg product is built."""

    def test_over_limit_is_conservatively_feasible(self):
        # Infeasible system (x <= -5 and x >= 0), but the limit forces
        # the conservative verdict: feasible, so the caller refuses.
        constraints = [({"x": 1}, 5), ({"x": -1}, 0)]
        before = bx.fm_blowup_count()
        assert bx._fm_feasible(constraints, ["x"], limit=0) is True
        assert bx.fm_blowup_count() == before + 1

    def test_within_limit_still_decides(self):
        constraints = [({"x": 1}, 5), ({"x": -1}, 0)]
        assert bx._fm_feasible(constraints, ["x"]) is False

    def test_solve_over_limit_returns_none(self):
        constraints = [({"x": 1}, -10), ({"x": -1}, 0)]
        before = bx.fm_blowup_count()
        assert bx._fm_solve(constraints, ["x"], limit=0) is None
        assert bx.fm_blowup_count() == before + 1

    def test_over_limit_bound_le_refuses_never_affirms(self, monkeypatch):
        # M(f) + 1 <= max(2*M(f), 1) holds, but under a starved limit the
        # comparison must come back refused — the sound direction.
        original = bx._fm_feasible
        monkeypatch.setattr(
            bx, "_fm_feasible",
            lambda constraints, variables, limit=4096:
                original(constraints, variables, limit=1))
        f = BMetric("f")
        small, large = badd(f, BConst(1)), bmax(BScale(2, f), BConst(1))
        assert fm_bound_le(small, large).holds is False
        assert fm_bound_le(small, large).holds is False  # stable


class TestBackendDispatch:
    def test_default_backend_is_fm(self):
        assert bx.get_default_backend() == "fm"

    def test_unknown_backend_is_rejected(self):
        with pytest.raises(ValueError, match="unknown bounds backend"):
            bx.set_default_backend("cvc5")
        with pytest.raises(ValueError, match="unknown bounds backend"):
            bound_le(BConst(1), BConst(2), backend="cvc5")

    def test_backend_kwarg_overrides_default(self):
        result = bound_le(BConst(1), BConst(2), backend="cross")
        assert result.holds and result.exact

    def test_set_default_backend_routes_bound_le(self):
        bx.set_default_backend("cross")
        try:
            assert bound_le(BConst(1), BConst(2)).holds
        finally:
            bx.set_default_backend("fm")

    @pytest.mark.skipif(smt.Z3_AVAILABLE, reason="z3 installed")
    def test_z3_backend_without_z3_raises(self):
        with pytest.raises(smt.SmtUnavailable, match="z3"):
            bound_le(BConst(1), BConst(2), backend="z3")

    def test_bound_equal_passes_backend_through(self):
        result = bx.bound_equal(BConst(3), BConst(3), backend="cross")
        assert result.holds and result.exact


class TestCrossCheck:
    def test_agrees_on_valid_ground_queries(self):
        f, g = BMetric("f"), BMetric("g")
        cases = [
            (BConst(0), BConst(0)),
            (f, badd(f, BConst(4))),
            (badd(f, BConst(1)), bmax(BScale(2, f), BConst(1))),
            (badd(f, g), bmax(BScale(2, f), BScale(3, g))),
            (bmax(f, g), badd(f, g)),
        ]
        for small, large in cases:
            result = smt.crosscheck_bound_le(small, large)
            assert result.holds, (small, large)

    def test_agrees_on_refused_ground_queries(self):
        f = BMetric("f")
        cases = [
            (badd(f, BConst(1)), f),
            (BScale(2, f), f),
            (BConst(5), BConst(4)),
        ]
        for small, large in cases:
            result = smt.crosscheck_bound_le(small, large)
            assert not result.holds, (small, large)

    def test_matches_fm_verdict_exactly(self):
        f = BMetric("f")
        small, large = badd(f, BConst(8)), bmax(BScale(3, f), BConst(12))
        via_fm = fm_bound_le(small, large)
        via_cross = smt.crosscheck_bound_le(small, large)
        assert via_cross.holds == via_fm.holds
        assert via_cross.exact == via_fm.exact

    def test_fm_only_fallback_is_counted(self):
        if smt.Z3_AVAILABLE:
            pytest.skip("z3 installed; the fallback path never runs")
        obs.enable()
        try:
            obs.reset()
            smt.crosscheck_bound_le(BMetric("f"), BScale(2, BMetric("f")))
            counters = obs.snapshot()["counters"]
            assert counters.get("logic.crosscheck.fm_only", 0) >= 1
            assert counters.get("logic.backend.cross.queries", 0) >= 1
        finally:
            obs.disable()
            obs.reset()

    def test_disagreement_is_structured(self):
        # Inject the gap-drop comparator fault directly: FM then refuses
        # a valid inequality and the cross-check must say so, loudly.
        f = BMetric("f")
        small, large = badd(f, BConst(1)), bmax(BScale(2, f), BConst(1))
        previous = bx._FAULT
        bx._FAULT = "fm-strict-gap-drop"
        try:
            with pytest.raises(smt.ComparatorDisagreement) as excinfo:
                smt.crosscheck_bound_le(small, large)
        finally:
            bx._FAULT = previous
        disagreement = excinfo.value
        assert disagreement.query["op"] == "bound_le"
        assert disagreement.query["small"] is small
        assert disagreement.query["large"] is large
        assert disagreement.fm is False
        assert disagreement.caught_by in ("smt-differential",
                                          "witness-audit")
        assert "disagreement" in str(disagreement)

    def test_zero_fast_path_with_parametric_large(self):
        # Regression (found replaying the golden snapshots under cross):
        # 0 <= large is affirmed exactly by the FM fast path even for
        # parametric large, and the sample audit must not try to
        # evaluate the parameters it does not have.  Before the fix this
        # raised ValueError("parameter ... has no value") inside every
        # recursion-spec check under the cross backend.
        from repro.logic.bexpr import BParam
        large = badd(BMetric("f"), BParam("fact$#n"))
        result = smt.crosscheck_bound_le(BConst(0), large)
        assert result.holds and result.exact

    def test_blowup_refusal_is_not_a_disagreement(self, monkeypatch):
        # A conservative refusal (limit starvation) is sound-but-
        # incomplete, not a lie: cross mode must pass it through.
        original = bx._fm_feasible
        monkeypatch.setattr(
            bx, "_fm_feasible",
            lambda constraints, variables, limit=4096:
                original(constraints, variables, limit=1))
        f = BMetric("f")
        small, large = badd(f, BConst(1)), bmax(BScale(2, f), BConst(1))
        result = smt.crosscheck_bound_le(small, large)
        assert result.holds is False

    def test_cross_via_checker_context_knob(self):
        from repro.driver import compile_c
        from repro.analyzer import StackAnalyzer

        source = ("int leaf(int x) { int a[4]; a[x & 3] = x; return a[0]; }\n"
                  "int main(void) { return leaf(3); }\n")
        compilation = compile_c(source, filename="smt_checker_knob.c")
        result = StackAnalyzer(compilation.clight).analyze()
        report = result.check(bounds_backend="cross")
        assert report.nodes > 0


@pytest.mark.skipif(not smt.Z3_AVAILABLE, reason="z3 not installed")
class TestZ3Translation:
    """Exercised by the bounds-crosscheck CI job (z3 installed)."""

    def test_ground_affirmation(self):
        f = BMetric("f")
        result = smt.smt_bound_le(badd(f, BConst(1)),
                                  bmax(BScale(2, f), BConst(1)))
        assert result.holds and result.exact

    def test_ground_refusal_carries_a_witness(self):
        f = BMetric("f")
        result, witness = smt._smt_decide(badd(f, BConst(1)), f, None)
        assert not result.holds
        assert witness is not None and "metric" in witness

    def test_two_metric_case_split(self):
        f, g = BMetric("f"), BMetric("g")
        assert smt.smt_bound_le(badd(f, g),
                                bmax(BScale(2, f), BScale(3, g))).holds

    def test_parametric_with_domain(self):
        from repro.logic.bexpr import BLog2, BMul, BParam
        n = BParam("n")
        m = BMetric("f")
        small = badd(m, BMul(BLog2(n), m))
        large = badd(m, BMul(badd(BLog2(n), BConst(1)), m))
        result = smt.smt_bound_le(small, large,
                                  {"n": range(1, 65)})
        assert result.holds and not result.exact

    def test_missing_domain_raises(self):
        from repro.logic.bexpr import BParam
        with pytest.raises(ValueError, match="verification domain"):
            smt.smt_bound_le(BParam("n"), BConst(100), None)

    def test_infinity_dominates(self):
        from repro.logic.bexpr import INFINITY
        f = BMetric("f")
        assert smt.smt_bound_le(f, BConst(INFINITY)).holds
        assert not smt.smt_bound_le(BConst(INFINITY), f).holds
