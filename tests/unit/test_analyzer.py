"""Unit tests for the automatic stack analyzer and the call graph."""

import pytest

from repro.analyzer import StackAnalyzer, build_call_graph
from repro.c.parser import parse
from repro.c.typecheck import typecheck
from repro.clight.from_c import clight_of_program
from repro.errors import AnalysisError
from repro.events.metrics import StackMetric
from repro.logic.bexpr import evaluate


def lower(source):
    program = parse(source)
    env = typecheck(program)
    return clight_of_program(program, env)


def analyze(source):
    return StackAnalyzer(lower(source)).analyze()


class TestCallGraph:
    def test_simple_edges(self):
        program = lower("int f() { return 0; } "
                        "int g() { return f(); } "
                        "int main() { return g(); }")
        graph = build_call_graph(program)
        assert graph.callees("main") == {"g"}
        assert graph.callees("g") == {"f"}
        assert graph.callees("f") == set()

    def test_external_calls_separated(self):
        program = lower("int main() { print_int(1); return 0; }")
        graph = build_call_graph(program)
        assert graph.callees("main") == set()
        assert graph.external_calls["main"] == {"print_int"}

    def test_topological_order(self):
        program = lower("int f() { return 0; } "
                        "int g() { return f(); } "
                        "int main() { return g() + f(); }")
        order = build_call_graph(program).topological_order()
        assert order.index("f") < order.index("g") < order.index("main")

    def test_self_recursion_detected(self):
        program = lower("int f(int n) { return f(n); } "
                        "int main() { return 0; }")
        graph = build_call_graph(program)
        assert graph.recursive_components() == [["f"]]
        with pytest.raises(AnalysisError):
            graph.topological_order()

    def test_mutual_recursion_detected(self):
        program = lower(
            "int b(int n); int a(int n) { return b(n); } "
            "int b(int n) { return a(n); } int main() { return 0; }")
        graph = build_call_graph(program)
        assert graph.recursive_components() == [["a", "b"]]

    def test_deep_call_chain_beyond_recursion_limit(self):
        # Iterative Tarjan: a call chain much deeper than Python's
        # default recursion limit must order without blowing the stack
        # (the recursive strongconnect this replaced could not).
        import sys

        depth = sys.getrecursionlimit() + 1500
        parts = ["int f0(void) { return 1; }"]
        parts += [f"int f{i}(void) {{ return f{i - 1}(); }}"
                  for i in range(1, depth)]
        parts.append(f"int main(void) {{ return f{depth - 1}(); }}")
        graph = build_call_graph(lower("\n".join(parts)))
        order = graph.topological_order()
        assert order.index("f0") < order.index(f"f{depth - 1}") \
            < order.index("main")
        assert graph.recursive_components() == []

    def test_calls_in_all_constructs_found(self):
        program = lower(
            "int f() { return 1; } "
            "int main() { int s = 0; "
            "if (f()) s++; while (f() < 0) s += f(); "
            "switch (f()) { case 1: s = f(); } return s; }")
        graph = build_call_graph(program)
        assert graph.callees("main") == {"f"}


class TestAutoBounds:
    def test_leaf_function_bound_is_metric(self):
        result = analyze("int f() { return 1; } int main() { return f(); }")
        assert repr(result.bound_expr("f")) == "M(f)"

    def test_call_chain_sums(self):
        result = analyze(
            "int f() { return 1; } int g() { return f(); } "
            "int main() { return g(); }")
        metric = StackMetric({"f": 8, "g": 16, "main": 24})
        assert result.bound_bytes("f", metric) == 8
        assert result.bound_bytes("g", metric) == 24
        assert result.bound_bytes("main", metric) == 48

    def test_branches_take_max(self):
        result = analyze(
            "int f() { return 1; } int g() { return 2; } "
            "int main() { if (1) return f(); else return g(); }")
        metric = StackMetric({"f": 100, "g": 8, "main": 4})
        assert result.bound_bytes("main", metric) == 104

    def test_sequential_calls_take_max_not_sum(self):
        result = analyze(
            "int f() { return 1; } int g() { return 2; } "
            "int main() { f(); g(); return 0; }")
        metric = StackMetric({"f": 40, "g": 24, "main": 8})
        assert result.bound_bytes("main", metric) == 48

    def test_nested_call_stacks_add(self):
        result = analyze(
            "int f() { return 1; } int g() { return f(); } "
            "int h() { return g(); } int main() { return h(); }")
        metric = StackMetric.uniform(["f", "g", "h", "main"], 16)
        assert result.bound_bytes("main", metric) == 64

    def test_loops_do_not_multiply(self):
        result = analyze(
            "int f() { return 1; } "
            "int main() { for (int i = 0; i < 1000; i++) f(); return 0; }")
        metric = StackMetric({"f": 8, "main": 16})
        assert result.bound_bytes("main", metric) == 24

    def test_externals_cost_zero(self):
        result = analyze("int main() { print_int(1); return 0; }")
        metric = StackMetric({"main": 12})
        assert result.bound_bytes("main", metric) == 12

    def test_self_recursion_inferred(self):
        result = analyze("int f(int n) { if (n) return f(n - 1); return 0; } "
                         "int main() { return f(3); }")
        assert result.recursive == ["f"]
        metric = StackMetric({"f": 16, "main": 8})
        # main calls f(3): depth 3 recursion plus f's own frame.
        assert result.bound_bytes("main", metric) == 8 + 4 * 16
        assert result.bound_bytes("f", metric, {"f$#n": 3}) == 4 * 16
        result.check()

    def test_unrankable_recursion_rejected(self):
        with pytest.raises(AnalysisError) as excinfo:
            analyze("int f(int n) { if (n) return f(n); return 0; } "
                    "int main() { return f(3); }")
        assert excinfo.value.sccs == [["f"]]

    def test_mutual_recursion_rejected(self):
        with pytest.raises(AnalysisError) as excinfo:
            analyze("int g(int n); "
                    "int f(int n) { if (n) return g(n - 1); return 0; } "
                    "int g(int n) { if (n) return f(n - 1); return 1; } "
                    "int main() { return f(3); }")
        assert excinfo.value.sccs == [["f", "g"]]

    def test_switch_bound(self):
        result = analyze(
            "int f() { return 1; } int g() { return 2; } "
            "int main() { switch (1) { case 1: return f(); "
            "case 2: return g(); } return 0; }")
        metric = StackMetric({"f": 32, "g": 16, "main": 8})
        assert result.bound_bytes("main", metric) == 40

    def test_analysis_records_time(self):
        result = analyze("int main() { return 0; }")
        assert result.elapsed_seconds >= 0


class TestEmittedDerivations:
    def test_derivations_check_exactly(self):
        result = analyze(
            "int f() { return 1; } int g() { return f(); } "
            "int main() { for (int i = 0; i < 3; i++) g(); "
            "if (1) f(); return 0; }")
        report = result.check()
        assert report.fully_exact
        assert report.nodes > 10

    def test_tampered_spec_rejected(self):
        from repro.errors import DerivationError
        from repro.logic.assertions import FunSpec
        from repro.logic.bexpr import ZERO

        result = analyze("int f() { return 1; } int main() { return f(); }")
        # Sabotage Γ: claim main's body needs no stack.
        result.gamma.add(FunSpec.constant("main", ZERO))
        with pytest.raises(DerivationError):
            result.check()

    def test_derivation_sizes_reported(self):
        result = analyze("int main() { return 0; }")
        assert result.functions["main"].derivation.size() >= 1
