"""Proof certificates: serialized derivations, independently re-checkable.

The paper's analyzer emits logic derivations precisely so that bounds
from different producers (the automatic analyzer, interactive proofs,
other static analyzers) *compose* and can be *re-checked* without
trusting the producer.  This module gives that story a wire format: a
whole-program analysis result — Γ specs plus one derivation per function
— serializes to JSON, and :func:`load_certificate` reconstructs it
against a (possibly different) copy of the program, where the ordinary
checker re-validates every rule application.

Statements inside derivation nodes are referenced *by path* into the
program's Clight AST (e.g. ``["seq.first", "loop.body"]``), so a
certificate is only meaningful relative to the exact program it was
produced for — re-checking against a modified program fails fast, which
is the behavior a certificate should have.
"""

from __future__ import annotations

import json
from typing import Any

from repro.clight import ast as cl
from repro.errors import DerivationError
from repro.logic import bexpr as bx
from repro.logic import derivation as dv
from repro.logic.assertions import FunContext, FunSpec, Post

FORMAT = "repro-stack-certificate"
VERSION = 3

#: Version 2 certificates (no parametric specs, hence no verification
#: domains) are still accepted: nothing in their payload changed meaning.
SUPPORTED_VERSIONS = (2, 3)


# ---------------------------------------------------------------------------
# Bound expressions <-> JSON
# ---------------------------------------------------------------------------


def bexpr_to_json(expr: bx.BExpr) -> Any:
    if isinstance(expr, bx.BConst):
        return {"k": "const",
                "v": "inf" if expr.value == bx.INFINITY else expr.value}
    if isinstance(expr, bx.BMetric):
        return {"k": "metric", "f": expr.function}
    if isinstance(expr, bx.BParam):
        return {"k": "param", "p": expr.name}
    if isinstance(expr, bx.BAdd):
        return {"k": "add", "items": [bexpr_to_json(i) for i in expr.items]}
    if isinstance(expr, bx.BMax):
        return {"k": "max", "items": [bexpr_to_json(i) for i in expr.items]}
    if isinstance(expr, bx.BScale):
        return {"k": "scale", "by": expr.factor,
                "body": bexpr_to_json(expr.body)}
    if isinstance(expr, bx.BFrameDiff):
        return {"k": "framediff", "total": bexpr_to_json(expr.total),
                "part": bexpr_to_json(expr.part)}
    if isinstance(expr, bx.BMul):
        return {"k": "mul", "l": bexpr_to_json(expr.left),
                "r": bexpr_to_json(expr.right)}
    if isinstance(expr, bx.BLog2):
        return {"k": "log2", "arg": bexpr_to_json(expr.arg)}
    if isinstance(expr, bx.BHalf):
        return {"k": "half", "ceil": expr.ceil,
                "arg": bexpr_to_json(expr.arg)}
    if isinstance(expr, bx.BParamDiff):
        return {"k": "pdiff", "l": bexpr_to_json(expr.left),
                "r": bexpr_to_json(expr.right)}
    raise DerivationError(f"unserializable bound {expr!r}")


def bexpr_from_json(data: Any) -> bx.BExpr:
    kind = data["k"]
    if kind == "const":
        value = data["v"]
        if value == "inf":
            return bx.BConst(bx.INFINITY)
        # Reject out-of-domain constants with a diagnostic instead of
        # letting the BConst naturals guard crash the checker.
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise DerivationError(
                f'bound constant must be a natural or "inf": {value!r}')
        return bx.BConst(value)
    if kind == "metric":
        return bx.BMetric(data["f"])
    if kind == "param":
        return bx.BParam(data["p"])
    if kind == "add":
        return bx.BAdd([bexpr_from_json(i) for i in data["items"]])
    if kind == "max":
        return bx.BMax([bexpr_from_json(i) for i in data["items"]])
    if kind == "scale":
        return bx.BScale(data["by"], bexpr_from_json(data["body"]))
    if kind == "framediff":
        return bx.BFrameDiff(bexpr_from_json(data["total"]),
                             bexpr_from_json(data["part"]))
    if kind == "mul":
        return bx.BMul(bexpr_from_json(data["l"]), bexpr_from_json(data["r"]))
    if kind == "log2":
        return bx.BLog2(bexpr_from_json(data["arg"]))
    if kind == "half":
        return bx.BHalf(bexpr_from_json(data["arg"]), data["ceil"])
    if kind == "pdiff":
        return bx.BParamDiff(bexpr_from_json(data["l"]),
                             bexpr_from_json(data["r"]))
    raise DerivationError(f"unknown bound kind {kind!r}")


# ---------------------------------------------------------------------------
# Statement paths
# ---------------------------------------------------------------------------

_CHILDREN = {
    cl.SSeq: (("seq.first", "first"), ("seq.second", "second")),
    cl.SIf: (("if.then", "then"), ("if.else", "otherwise")),
    cl.SLoop: (("loop.body", "body"), ("loop.post", "post")),
    cl.SBlock: (("block.body", "body"),),
}


def _statement_paths(stmt: cl.Stmt, prefix: tuple[str, ...],
                     table: dict[int, tuple[str, ...]]) -> None:
    table[id(stmt)] = prefix
    for cls, edges in _CHILDREN.items():
        if isinstance(stmt, cls):
            for label, attribute in edges:
                _statement_paths(getattr(stmt, attribute),
                                 prefix + (label,), table)
            return


def _resolve_path(stmt: cl.Stmt, path: list[str]) -> cl.Stmt:
    for label in path:
        for cls, edges in _CHILDREN.items():
            if isinstance(stmt, cls):
                match = {lab: attr for lab, attr in edges}.get(label)
                if match is not None:
                    stmt = getattr(stmt, match)
                    break
        else:
            raise DerivationError(
                f"certificate path {label!r} does not match the program "
                f"(statement is {type(stmt).__name__})")
    return stmt


# ---------------------------------------------------------------------------
# Derivations <-> JSON
# ---------------------------------------------------------------------------


def _post_to_json(post: Post) -> Any:
    return [bexpr_to_json(part) for part in post.parts()]


def _post_from_json(data: Any) -> Post:
    skip, brk, ret, cont = (bexpr_from_json(part) for part in data)
    return Post(skip, brk, ret, cont)


def derivation_to_json(node: dv.Derivation,
                       paths: dict[int, tuple[str, ...]]) -> Any:
    conclusion = node.conclusion
    stmt_path = paths.get(id(conclusion.stmt))
    if stmt_path is None:
        raise DerivationError(
            "derivation mentions a statement outside the function body")
    data: dict[str, Any] = {
        "rule": node.rule,
        "stmt": list(stmt_path),
        "pre": bexpr_to_json(conclusion.pre),
        "post": _post_to_json(conclusion.post),
    }
    if isinstance(node, dv.DCall):
        data["callee"] = node.callee
        data["spec_args"] = {name: bexpr_to_json(expr)
                             for name, expr in node.spec_args.items()}
    if isinstance(node, dv.DExternal):
        data["callee"] = node.callee
    if isinstance(node, dv.DFrame):
        data["frame"] = bexpr_to_json(node.frame)
    children = list(node.children())
    if children:
        data["children"] = [derivation_to_json(child, paths)
                            for child in children]
    return data


_RULES_SIMPLE = {
    "Q:SKIP": dv.DSkip, "Q:SET": dv.DSet, "Q:STORE": dv.DStore,
    "Q:BREAK": dv.DBreak, "Q:CONTINUE": dv.DContinue,
    "Q:RETURN": dv.DReturn,
}


#: Premise count per rule: a serialized rule application with the wrong
#: arity (e.g. a truncated tree) must fail with a diagnostic naming the
#: rule, never an ``IndexError``.
_RULE_ARITY = {
    "Q:SEQ": 2, "Q:IF": 2, "Q:LOOP": 2,
    "Q:BLOCK": 1, "Q:FRAME": 1, "Q:CONSEQ": 1,
    "Q:CALL": 0, "Q:EXTERNAL": 0,
    **{rule: 0 for rule in _RULES_SIMPLE},
}


def derivation_from_json(data: Any, body: cl.Stmt) -> dv.Derivation:
    stmt = _resolve_path(body, data["stmt"])
    triple = dv.Triple(bexpr_from_json(data["pre"]), stmt,
                       _post_from_json(data["post"]))
    rule = data["rule"]
    arity = _RULE_ARITY.get(rule)
    if arity is None:
        raise DerivationError(f"unknown rule {rule!r} in certificate")
    raw_children = data.get("children", ())
    if len(raw_children) != arity:
        raise DerivationError(
            f"{rule} application at path {data['stmt']!r} has "
            f"{len(raw_children)} premise(s), expected {arity} "
            "(truncated rule tree?)")
    children = [derivation_from_json(child, body) for child in raw_children]

    if rule in _RULES_SIMPLE:
        return _RULES_SIMPLE[rule](triple)
    if rule == "Q:SEQ":
        return dv.DSeq(triple, children[0], children[1])
    if rule == "Q:IF":
        return dv.DIf(triple, children[0], children[1])
    if rule == "Q:LOOP":
        return dv.DLoop(triple, children[0], children[1])
    if rule == "Q:BLOCK":
        return dv.DBlock(triple, children[0])
    if rule == "Q:CALL":
        spec_args = {name: bexpr_from_json(expr)
                     for name, expr in data.get("spec_args", {}).items()}
        return dv.DCall(triple, data["callee"], spec_args)
    if rule == "Q:EXTERNAL":
        return dv.DExternal(triple, data["callee"])
    if rule == "Q:FRAME":
        return dv.DFrame(triple, bexpr_from_json(data["frame"]), children[0])
    return dv.DConseq(triple, children[0])


# ---------------------------------------------------------------------------
# Whole-program certificates
# ---------------------------------------------------------------------------


def export_certificate(analysis) -> str:
    """Serialize an :class:`~repro.analyzer.auto.AnalysisResult` to JSON."""
    functions = {}
    for name, function_analysis in analysis.functions.items():
        body = analysis.program.function(name).body
        paths: dict[int, tuple[str, ...]] = {}
        _statement_paths(body, (), paths)
        spec = analysis.gamma[name]
        functions[name] = {
            "spec": {
                "params": spec.params,
                "pre": bexpr_to_json(spec.pre),
                "post": bexpr_to_json(spec.post),
            },
            "total_bound": bexpr_to_json(function_analysis.total_bound),
            "derivation": derivation_to_json(
                function_analysis.derivation, paths),
        }
    document = {"format": FORMAT, "version": VERSION,
                "functions": functions}
    # Verification domains of parametric (inferred-recursion) specs: part
    # of the *claim*, so they travel inside the certificate and the
    # re-check below replays the induction over exactly these instances.
    domains = getattr(analysis, "param_domains", None)
    if domains:
        document["param_domains"] = {name: list(values)
                                     for name, values in domains.items()}
    return json.dumps(document, indent=1)


def _domains_from_json(data: Any) -> dict[str, list[int]] | None:
    """Parse and sanity-check the ``param_domains`` table."""
    if data is None:
        return None
    if not isinstance(data, dict):
        raise DerivationError("param_domains must be an object")
    domains: dict[str, list[int]] = {}
    for name, values in data.items():
        if (not isinstance(values, list) or not values
                or not all(isinstance(v, int) and not isinstance(v, bool)
                           for v in values)):
            raise DerivationError(
                f"verification domain of {name!r} must be a non-empty "
                "list of integers (an empty domain would make the "
                "induction pass vacuously)")
        domains[name] = values
    return domains or None


def load_certificate(text: str, program: cl.Program):
    """Parse a certificate against ``program`` and re-check every proof.

    Returns ``(gamma, bounds, report)`` where ``bounds`` maps each
    function to its symbolic total bound.  Raises
    :class:`DerivationError` if the certificate is malformed, refers to
    statements that do not exist in ``program``, or any derivation fails
    the checker — certificates carry no authority of their own.
    """
    from repro.logic.checker import (CheckerContext, CheckReport,
                                     check_function_spec)

    try:
        data = json.loads(text)
    except ValueError as error:  # json.JSONDecodeError subclasses ValueError
        raise DerivationError(f"certificate is not valid JSON: {error}")
    if not isinstance(data, dict):
        raise DerivationError("certificate is not a JSON object")
    if data.get("format") != FORMAT:
        raise DerivationError("not a stack-bound certificate")
    if data.get("version") not in SUPPORTED_VERSIONS:
        raise DerivationError(
            f"unsupported certificate version {data.get('version')}")
    param_domains = _domains_from_json(data.get("param_domains"))

    gamma = FunContext()
    derivations: dict[str, dv.Derivation] = {}
    bounds: dict[str, bx.BExpr] = {}
    for name, entry in data.get("functions", {}).items():
        if not program.is_internal(name):
            raise DerivationError(
                f"certificate covers unknown function {name!r}")
        try:
            spec_data = entry["spec"]
            spec = FunSpec(name, spec_data["params"],
                           bexpr_from_json(spec_data["pre"]),
                           bexpr_from_json(spec_data["post"]))
            gamma.add(spec)
            bounds[name] = bexpr_from_json(entry["total_bound"])
            derivations[name] = derivation_from_json(
                entry["derivation"], program.function(name).body)
        except DerivationError:
            raise
        except (KeyError, TypeError, IndexError) as error:
            raise DerivationError(
                f"malformed certificate entry for {name!r} "
                f"({type(error).__name__}: {error})")
        # The checker below validates the derivation against the spec,
        # but the advertised total M(f) + P_f is *reported*, not derived
        # — re-derive it so a lying total_bound field carries no
        # authority.  Ground totals are pinned exactly; parametric totals
        # are pinned over the certificate's own verification domains.
        expected = bx.badd(bx.bmetric(name), spec.pre)
        try:
            if not bx.bound_equal(bounds[name], expected,
                                  param_domains=param_domains).holds:
                raise DerivationError(
                    f"{name}: advertised total_bound does not equal "
                    f"M({name}) + spec precondition")
        except ValueError as error:
            raise DerivationError(
                f"{name}: cannot validate total_bound: {error}")

    ctx = CheckerContext(gamma, externals=program.externals,
                         param_domains=param_domains)
    report = CheckReport()
    for name, derivation in derivations.items():
        try:
            check_function_spec(program.function(name), derivation, ctx,
                                report)
        except ValueError as error:
            # The sampled comparator raises ValueError when a parameter
            # has no declared domain; in a certificate that is a proof
            # defect, not a usage error.
            raise DerivationError(
                f"{name}: sampled side condition not coverable: {error}")
    return gamma, bounds, report
