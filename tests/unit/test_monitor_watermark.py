"""Watermark accounting of the stack monitor (``repro.measure.monitor``).

Three properties the campaign's probes lean on:

* overflow accounting — an overflowing run still reports a meaningful
  watermark (the deepest *successful* ESP position; the decrement that
  would cross the stack base raises before it is recorded);
* the exact ``--stack`` boundary — a block of exactly the verified
  bound converges, four bytes fewer overflows (Theorem 1's 4-byte gap);
* engine equivalence — the decoded and legacy ASMsz engines share the
  monitor and must report identical watermarks program by program.
"""

import pytest

from repro.driver import compile_c, verify_stack_bounds
from repro.measure.monitor import measure_c_program, measure_compilation
from repro.programs.loader import load_source

SOURCE = ("int helper(int x) { return x + 1; } "
          "int main() { print_int(helper(41)); return 0; }")

DEEP = ("int f(int n) { if (n == 0) { return 0; } return f(n - 1) + 1; } "
        "int main() { return f(200); }")


class TestOverflowAccounting:
    def test_overflow_watermark_stays_within_provision(self):
        """The failed decrement is not part of the watermark: an
        overflowing run reports at most the provisioned block."""
        run = measure_c_program(DEEP, stack_bytes=64)
        assert not run.converged
        assert 0 < run.measured_bytes <= 64

    def test_overflow_watermark_grows_with_provision(self):
        """More stack lets the recursion get deeper before it overflows,
        and the watermark tracks that."""
        small = measure_c_program(DEEP, stack_bytes=64)
        large = measure_c_program(DEEP, stack_bytes=256)
        assert not small.converged and not large.converged
        assert large.measured_bytes > small.measured_bytes

    def test_converged_watermark_is_stack_size_independent(self):
        """The watermark measures the program, not the provision."""
        compilation = compile_c(SOURCE)
        lean = measure_compilation(compilation, stack_bytes=256)
        lavish = measure_compilation(compilation, stack_bytes=1 << 20)
        assert lean.converged and lavish.converged
        assert lean.measured_bytes == lavish.measured_bytes


class TestExactStackBoundary:
    def test_bound_is_exactly_sufficient(self):
        """``--stack B`` (the hint ``repro bounds`` prints) converges and
        measures ``B - 4``; ``--stack B-4`` overflows."""
        bounds = verify_stack_bounds(SOURCE)
        compilation = bounds.compilation
        b = bounds.stack_requirement()
        at_bound = measure_compilation(compilation, stack_bytes=b)
        assert at_bound.converged
        assert at_bound.measured_bytes == b - 4
        under = measure_compilation(compilation, stack_bytes=b - 4)
        assert not under.converged

    def test_minimal_block_from_measurement(self):
        """A block of ``measured + 4`` (main's return-address slot) is the
        smallest that converges."""
        compilation = compile_c(SOURCE)
        measured = measure_compilation(compilation).measured_bytes
        assert measure_compilation(compilation,
                                   stack_bytes=measured + 4).converged
        assert not measure_compilation(compilation,
                                       stack_bytes=measured).converged


# A cross-section of the packaged catalog: straight-line, table-driven,
# call-heavy and recursive programs (the full-catalog sweep lives in the
# integration suite; these keep the unit tier fast).
CATALOG_SAMPLE = [
    "paper_example.c",
    "mibench/crc32.c",
    "mibench/bitcount.c",
    "mibench/dijkstra.c",
    "recursive/fib.c",
    "recursive/qsort.c",
    "recursive/sum.c",
]


class TestEngineEquivalence:
    @pytest.mark.parametrize("path", CATALOG_SAMPLE)
    def test_decoded_and_legacy_watermarks_match(self, path):
        compilation = compile_c(load_source(path), filename=path)
        decoded = measure_compilation(compilation, decoded=True)
        legacy = measure_compilation(compilation, decoded=False)
        assert decoded.converged and legacy.converged
        assert decoded.measured_bytes == legacy.measured_bytes
        assert decoded.return_code == legacy.return_code
        assert decoded.output == legacy.output

    def test_engines_agree_on_overflow_watermark(self):
        compilation = compile_c(DEEP)
        decoded = measure_compilation(compilation, stack_bytes=128,
                                      decoded=True)
        legacy = measure_compilation(compilation, stack_bytes=128,
                                     decoded=False)
        assert not decoded.converged and not legacy.converged
        assert decoded.measured_bytes == legacy.measured_bytes
