"""Derivation trees for the quantitative Hoare logic (paper Fig. 4).

A derivation is the executable counterpart of a Coq proof term: one node
per rule application, carrying its conclusion triple and its premises.
Derivations are produced by the automatic stack analyzer
(:mod:`repro.analyzer`) and by hand-written proofs for recursive
functions, and are re-validated by :mod:`repro.logic.checker` — nothing is
trusted about the producer.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.clight import ast as cl
from repro.logic.assertions import Post
from repro.logic.bexpr import BExpr


class Triple:
    """``Γ ⊢ {P} S {Q}``: the conclusion of a derivation node."""

    __slots__ = ("pre", "stmt", "post")

    def __init__(self, pre: BExpr, stmt: cl.Stmt, post: Post) -> None:
        self.pre = pre
        self.stmt = stmt
        self.post = post

    def __repr__(self) -> str:
        return f"{{{self.pre!r}}} {self.stmt!r} {self.post!r}"


class Derivation:
    """Base class; every node exposes its conclusion and its children."""

    __slots__ = ("conclusion",)
    rule = "?"

    def __init__(self, conclusion: Triple) -> None:
        self.conclusion = conclusion

    def children(self) -> Sequence["Derivation"]:
        return ()

    def size(self) -> int:
        """Number of rule applications in the tree (proof size)."""
        return 1 + sum(child.size() for child in self.children())

    def __repr__(self) -> str:
        return f"<{self.rule}: {self.conclusion!r}>"


class DSkip(Derivation):
    rule = "Q:SKIP"
    __slots__ = ()


class DSet(Derivation):
    """Assignments to temporaries cost no stack (zero-cost axiom)."""
    rule = "Q:SET"
    __slots__ = ()


class DStore(Derivation):
    """Memory stores cost no stack."""
    rule = "Q:STORE"
    __slots__ = ()


class DBreak(Derivation):
    rule = "Q:BREAK"
    __slots__ = ()


class DContinue(Derivation):
    rule = "Q:CONTINUE"
    __slots__ = ()


class DReturn(Derivation):
    rule = "Q:RETURN"
    __slots__ = ()


class DSeq(Derivation):
    rule = "Q:SEQ"
    __slots__ = ("first", "second")

    def __init__(self, conclusion: Triple, first: Derivation,
                 second: Derivation) -> None:
        super().__init__(conclusion)
        self.first = first
        self.second = second

    def children(self) -> Sequence[Derivation]:
        return (self.first, self.second)


class DIf(Derivation):
    rule = "Q:IF"
    __slots__ = ("then", "otherwise")

    def __init__(self, conclusion: Triple, then: Derivation,
                 otherwise: Derivation) -> None:
        super().__init__(conclusion)
        self.then = then
        self.otherwise = otherwise

    def children(self) -> Sequence[Derivation]:
        return (self.then, self.otherwise)


class DLoop(Derivation):
    rule = "Q:LOOP"
    __slots__ = ("body", "post_stmt")

    def __init__(self, conclusion: Triple, body: Derivation,
                 post_stmt: Derivation) -> None:
        super().__init__(conclusion)
        self.body = body
        self.post_stmt = post_stmt

    def children(self) -> Sequence[Derivation]:
        return (self.body, self.post_stmt)


class DBlock(Derivation):
    rule = "Q:BLOCK"
    __slots__ = ("body",)

    def __init__(self, conclusion: Triple, body: Derivation) -> None:
        super().__init__(conclusion)
        self.body = body

    def children(self) -> Sequence[Derivation]:
        return (self.body,)


class DCall(Derivation):
    """Q:CALL with the spec instantiation ``spec_args``.

    ``spec_args`` maps the callee spec's logical parameters to bound
    expressions over the *caller's* parameters — the quantitative
    counterpart of choosing the auxiliary state at a call site (e.g.
    ``Z -> Z - 1`` for the recursive call of ``bsearch``).
    """

    rule = "Q:CALL"
    __slots__ = ("callee", "spec_args")

    def __init__(self, conclusion: Triple, callee: str,
                 spec_args: Optional[Mapping[str, BExpr]] = None) -> None:
        super().__init__(conclusion)
        self.callee = callee
        self.spec_args = dict(spec_args or {})


class DExternal(Derivation):
    """Calls to external functions cost no stack (metric convention)."""

    rule = "Q:EXTERNAL"
    __slots__ = ("callee",)

    def __init__(self, conclusion: Triple, callee: str) -> None:
        super().__init__(conclusion)
        self.callee = callee


class DFrame(Derivation):
    rule = "Q:FRAME"
    __slots__ = ("frame", "body")

    def __init__(self, conclusion: Triple, frame: BExpr,
                 body: Derivation) -> None:
        super().__init__(conclusion)
        self.frame = frame
        self.body = body

    def children(self) -> Sequence[Derivation]:
        return (self.body,)


class DConseq(Derivation):
    rule = "Q:CONSEQ"
    __slots__ = ("body",)

    def __init__(self, conclusion: Triple, body: Derivation) -> None:
        super().__init__(conclusion)
        self.body = body

    def children(self) -> Sequence[Derivation]:
        return (self.body,)


def pretty(derivation: Derivation, indent: int = 0) -> str:
    """Render a derivation tree for inspection and documentation."""
    pad = "  " * indent
    lines = [f"{pad}{derivation.rule}  {{{derivation.conclusion.pre!r}}} ... "
             f"{{{derivation.conclusion.post.skip!r}}}"]
    for child in derivation.children():
        lines.append(pretty(child, indent + 1))
    return "\n".join(lines)
