"""A Mach interpreter with per-call frame blocks and *global* registers.

Registers are machine-global (as on real hardware): a callee freely
clobbers them, so this interpreter is a genuine differential check that
the register allocator spilled everything live across calls.  Each call
allocates one frame block of ``SF(f)`` bytes in the block memory;
``MGetParam`` reads the caller's frame through the activation record —
the last remaining indirection, which the ASM generation then removes by
merging all frames into one block (paper §3.2).
"""

from __future__ import annotations

from typing import Optional

from repro import engines, obs, ops
from repro.errors import DynamicError, MemoryError_, UndefinedBehaviorError
from repro.events.stream import Consumer, CountingSink, StreamOutcome
from repro.events.trace import (Behavior, CallEvent, Converges, Diverges,
                                Event, GoesWrong, ReturnEvent)
from repro.mach import ast as mach
from repro.memory import Chunk, Memory
from repro.memory.values import VFloat, VInt, VPtr, VUndef, Value
from repro.regalloc.locations import LFReg, LReg, LSlot, Loc, RESULT_FLOAT, \
    RESULT_INT
from repro.runtime import call_external

DEFAULT_FUEL = 20_000_000

#: Engine selector: the pre-decoded threaded-code interpreter in
#: :mod:`repro.mach.decode` by default; ``decoded=False`` re-runs on the
#: original ``step()`` machine below (kept as the differential oracle).
DEFAULT_DECODED = True

#: Tier used when decoding is enabled at all: ``"codegen"`` (the
#: per-program specialized driver) or ``"decoded"``.  Per-call
#: ``engine=`` arguments override; ``DEFAULT_DECODED = False`` still
#: forces the legacy loop everywhere (the old kill switch).
DEFAULT_ENGINE = "codegen"


class _Activation:
    __slots__ = ("function", "pc", "frame", "caller_frame")

    def __init__(self, function: mach.MachFunction, pc: int,
                 frame: Optional[VPtr], caller_frame: Optional[VPtr]) -> None:
        self.function = function
        self.pc = pc
        self.frame = frame
        self.caller_frame = caller_frame


class MachMachine:
    def __init__(self, program: mach.MachProgram,
                 output: Optional[list] = None) -> None:
        self.program = program
        self.memory = Memory()
        self.globals: dict[str, VPtr] = {}
        for var in program.globals:
            ptr = self.memory.alloc(var.size, tag=f"global {var.name}")
            self.memory.store_bytes(ptr, var.image)
            self.globals[var.name] = ptr
        self.regs: dict[str, Value] = {}  # machine-global register file
        self.stack: list[_Activation] = []
        self.output = output
        self.done = False
        self.return_code: Optional[int] = None

    # -- locations ---------------------------------------------------------------

    def read(self, act: _Activation, loc: Loc) -> Value:
        if isinstance(loc, (LReg, LFReg)):
            return self.regs.get(loc.name, VUndef())
        assert isinstance(loc, LSlot)
        frame = self._require_frame(act)
        offset = act.function.frame.slot_offset(loc)
        chunk = Chunk.FLOAT64 if loc.is_float_class else Chunk.INT32
        return self.memory.load(chunk, frame.add(offset))

    def write(self, act: _Activation, loc: Loc, value: Value) -> None:
        if isinstance(loc, (LReg, LFReg)):
            self.regs[loc.name] = value
            return
        assert isinstance(loc, LSlot)
        frame = self._require_frame(act)
        offset = act.function.frame.slot_offset(loc)
        chunk = Chunk.FLOAT64 if loc.is_float_class else Chunk.INT32
        self.memory.store(chunk, frame.add(offset), value)

    def _require_frame(self, act: _Activation) -> VPtr:
        if act.frame is None:
            raise DynamicError(f"{act.function.name}: frame access "
                               "without a frame")
        return act.frame

    # -- control ----------------------------------------------------------------

    def _enter(self, function: mach.MachFunction,
               caller_frame: Optional[VPtr]) -> Event:
        frame = None
        if function.frame.size > 0:
            frame = self.memory.alloc(function.frame.size,
                                      tag=f"frame {function.name}")
        self.stack.append(_Activation(function, 0, frame, caller_frame))
        return CallEvent(function.name)

    def step(self) -> Optional[Event]:
        act = self.stack[-1]
        if act.pc >= len(act.function.body):
            # Fell off the end of the body: return with whatever is in
            # the result register (mirrors falling through in Clight).
            return self._return()
        instr = act.function.body[act.pc]
        act.pc += 1

        if isinstance(instr, (mach.MLabel,)):
            return None
        if isinstance(instr, mach.MOp):
            args = [self.read(act, a) for a in instr.args]
            self.write(act, instr.dest, self._eval_op(act, instr.op, args))
            return None
        if isinstance(instr, mach.MLoad):
            addr = self.read(act, instr.addr)
            if not isinstance(addr, VPtr):
                raise MemoryError_(f"load through non-pointer {addr!r}")
            self.write(act, instr.dest, self.memory.load(instr.chunk, addr))
            return None
        if isinstance(instr, mach.MStore):
            addr = self.read(act, instr.addr)
            if not isinstance(addr, VPtr):
                raise MemoryError_(f"store through non-pointer {addr!r}")
            value = self.read(act, instr.src)
            self.memory.store(instr.chunk, addr, instr.chunk.normalize(value))
            return None
        if isinstance(instr, mach.MStoreArg):
            frame = self._require_frame(act)
            chunk = Chunk.FLOAT64 if instr.is_float else Chunk.INT32
            self.memory.store(chunk, frame.add(instr.offset),
                              self.read(act, instr.src))
            return None
        if isinstance(instr, mach.MGetParam):
            if act.caller_frame is None:
                raise DynamicError(
                    f"{act.function.name}: parameter read without a caller")
            chunk = Chunk.FLOAT64 if instr.is_float else Chunk.INT32
            value = self.memory.load(chunk, act.caller_frame.add(instr.offset))
            self.write(act, instr.dest, value)
            return None
        if isinstance(instr, mach.MCall):
            callee = self.program.functions[instr.callee]
            return self._enter(callee, act.frame)
        if isinstance(instr, mach.MExtCall):
            args = [self.read(act, a) for a in instr.args]
            result, event = call_external(
                instr.callee, args,
                alloc=lambda size: self.memory.alloc(size, tag="malloc"),
                output=self.output)
            if instr.dest is not None:
                self.write(act, instr.dest, result)
            return event
        if isinstance(instr, mach.MGoto):
            act.pc = act.function.labels[instr.label]
            return None
        if isinstance(instr, mach.MCond):
            if self.read(act, instr.arg).is_true():
                act.pc = act.function.labels[instr.label]
            return None
        if isinstance(instr, mach.MReturn):
            return self._return()
        raise DynamicError(f"unknown Mach instruction {instr!r}")

    def _eval_op(self, act: _Activation, op: tuple, args: list[Value]) -> Value:
        kind = op[0]
        if kind == "const":
            return VInt(op[1])
        if kind == "constf":
            return VFloat(op[1])
        if kind == "move":
            return args[0]
        if kind == "addrglobal":
            try:
                return self.globals[op[1]]
            except KeyError:
                raise UndefinedBehaviorError(
                    f"unknown global {op[1]!r}") from None
        if kind == "addrstack":
            return self._require_frame(act).add(op[1])
        if kind == "unop":
            return ops.eval_unop(op[1], args[0])
        if kind == "binop":
            return ops.eval_binop(op[1], args[0], args[1])
        raise DynamicError(f"unknown Mach operation {op!r}")

    def _return(self) -> Event:
        act = self.stack.pop()
        if act.frame is not None:
            self.memory.free(act.frame)
        event = ReturnEvent(act.function.name)
        if not self.stack:
            self.done = True
            value = self.regs.get(RESULT_INT, VUndef())
            self.return_code = value.signed if isinstance(value, VInt) else 0
        return event


def run_streamed(program: mach.MachProgram, sink: Consumer,
                 fuel: int = DEFAULT_FUEL, output: Optional[list] = None,
                 decoded: Optional[bool] = None,
                 engine: Optional[str] = None) -> StreamOutcome:
    """Run ``program``, pushing every event into ``sink`` as emitted.

    ``decoded`` selects the engine (None = :data:`DEFAULT_DECODED`);
    both engines produce the same events, outcome classification and
    step counts by construction.  Like RTL, the legacy Mach loop treats
    ``FuelExhaustedError`` like any other ``DynamicError``.
    """
    engine = engines.resolve(DEFAULT_DECODED, DEFAULT_ENGINE,
                             decoded, engine)
    if obs.enabled:
        # Wrapped at the entry point only — the step loops stay untouched.
        with obs.span("exec.mach", engine=engine) as sp:
            outcome = _run_streamed(program, sink, fuel, output, engine)
        sp.set(kind=outcome.kind, steps=outcome.steps,
               events=outcome.events)
        obs.add("interp.mach.steps", outcome.steps)
        obs.add("interp.mach.seconds", sp.dur)
        obs.add("interp.mach.runs")
        if engine == "codegen":
            obs.add("interp.codegen.steps", outcome.steps)
            obs.add("interp.codegen.seconds", sp.dur)
            obs.add("interp.codegen.runs")
        return outcome
    return _run_streamed(program, sink, fuel, output, engine)


def _run_streamed(program: mach.MachProgram, sink: Consumer, fuel: int,
                  output: Optional[list], engine: str) -> StreamOutcome:
    if engine == "codegen":
        from repro.mach import codegen
        return codegen.run_streamed(program, sink, fuel, output=output)
    if engine == "decoded":
        from repro.mach import decode
        return decode.run_streamed(program, sink, fuel, output=output)
    counting = CountingSink(sink)
    machine = MachMachine(program, output=output)
    main = program.functions.get(program.main)
    if main is None:
        return StreamOutcome(StreamOutcome.GOES_WRONG,
                             reason="no main function")
    i = 0
    try:
        counting(machine._enter(main, None))
        for i in range(fuel):
            if machine.done:
                break
            event = machine.step()
            if event is not None:
                counting(event)
        else:
            return StreamOutcome(StreamOutcome.DIVERGES,
                                 events=counting.count, steps=fuel)
    except DynamicError as exc:
        return StreamOutcome(StreamOutcome.GOES_WRONG, reason=str(exc),
                             events=counting.count, steps=i)
    if not machine.done:
        return StreamOutcome(StreamOutcome.DIVERGES,
                             events=counting.count, steps=i)
    assert machine.return_code is not None
    return StreamOutcome(StreamOutcome.CONVERGES,
                         return_code=machine.return_code,
                         events=counting.count, steps=i)


def run_program(program: mach.MachProgram, fuel: int = DEFAULT_FUEL,
                output: Optional[list] = None,
                decoded: Optional[bool] = None,
                engine: Optional[str] = None) -> Behavior:
    trace: list[Event] = []
    outcome = run_streamed(program, trace.append, fuel, output=output,
                           decoded=decoded, engine=engine)
    return outcome.to_behavior(trace)
