"""Unit tests for ASMsz generation and the finite-stack machine."""

import pytest

from repro.asm import ast as asm
from repro.asm.machine import AsmMachine, GLOBAL_BASE, run_program
from repro.driver import compile_c
from repro.errors import StackOverflowError_
from repro.events.trace import Converges, GoesWrong, IOEvent
from repro.memory.chunks import Chunk


def compile_(source, **macros):
    return compile_c(source, macros={k: str(v) for k, v in macros.items()})


class TestCodeShape:
    def test_no_frame_pseudo_instructions(self):
        # The whole point of ASMsz: frames are plain ESP arithmetic.
        compilation = compile_(
            "int f(int x) { int a[4]; a[0] = x; return a[0]; } "
            "int main() { return f(7); }")
        f = compilation.asm.functions["f"]
        kinds = {type(i).__name__ for i in f.body}
        assert "Pespadd" in kinds
        assert not any(k.startswith("Palloc") or k.startswith("Pfree")
                       for k in kinds)

    def test_prologue_matches_frame_size(self):
        compilation = compile_(
            "int f(int x) { int a[4]; a[0] = x; return a[0]; } "
            "int main() { return f(7); }")
        f = compilation.asm.functions["f"]
        sf = compilation.frame_sizes["f"]
        assert isinstance(f.body[0], asm.Pespadd)
        assert f.body[0].delta == -sf

    def test_leaf_without_frame_has_no_espadd(self):
        compilation = compile_("int f() { return 1; } "
                               "int main() { return f(); }")
        f = compilation.asm.functions["f"]
        assert not any(isinstance(i, asm.Pespadd) for i in f.body)

    def test_externals_become_builtins(self):
        compilation = compile_("int main() { print_int(3); return 0; }")
        main = compilation.asm.functions["main"]
        builtins = [i for i in main.body if isinstance(i, asm.Pbuiltin)]
        assert [b.name for b in builtins] == ["print_int"]
        assert not any(isinstance(i, asm.Pcall) and i.symbol == "print_int"
                       for i in main.body)

    def test_pretty_prints(self):
        compilation = compile_("int main() { return 0; }")
        text = compilation.asm.pretty()
        assert "main:" in text


class TestExecution:
    def test_return_code(self):
        compilation = compile_("int main() { return 42; }")
        behavior, _machine = compilation.run()
        assert isinstance(behavior, Converges)
        assert behavior.return_code == 42

    def test_negative_return_code(self):
        compilation = compile_("int main() { return -3; }")
        behavior, _machine = compilation.run()
        assert behavior.return_code == -3

    def test_globals_initialized(self):
        compilation = compile_(
            "int g[3] = {10, 20, 30}; int main() { return g[1]; }")
        behavior, _machine = compilation.run()
        assert behavior.return_code == 20

    def test_io_events_only(self):
        compilation = compile_(
            "int f() { print_int(1); return 0; } "
            "int main() { f(); return 0; }")
        behavior, _machine = compilation.run()
        assert all(isinstance(e, IOEvent) for e in behavior.trace)

    def test_output_collected(self):
        compilation = compile_(
            "int main() { print_int(5); print_float(1.5); return 0; }")
        output = []
        behavior, _machine = compilation.run(output=output)
        assert output == [5, 1.5]

    def test_doubles_roundtrip_through_stack(self):
        compilation = compile_(
            "double id(double d) { return d; } "
            "int main() { return id(2.5) == 2.5; }")
        behavior, _machine = compilation.run()
        assert behavior.return_code == 1

    def test_malloc_arena(self):
        compilation = compile_(
            "int main() { int *p = malloc(12); int *q = malloc(12); "
            "p[0] = 1; q[0] = 2; return p[0] + q[0] + (p != q); }")
        behavior, _machine = compilation.run()
        assert behavior.return_code == 4

    def test_malloc_exhaustion_returns_null(self):
        compilation = compile_(
            "int main() { void *p = malloc(0x7fffffff); return p == 0; }")
        behavior, _machine = compilation.run()
        assert behavior.return_code == 1

    def test_division_by_zero_goes_wrong(self):
        compilation = compile_("int z; int main() { return 5 / z; }")
        behavior, _machine = compilation.run()
        assert isinstance(behavior, GoesWrong)

    def test_null_access_goes_wrong(self):
        compilation = compile_("int main() { int *p = 0; return *p; }")
        behavior, _machine = compilation.run()
        assert isinstance(behavior, GoesWrong)


class TestFiniteStack:
    def recursion(self, depth):
        return compile_(
            "int f(int n) { if (n == 0) return 0; return 1 + f(n - 1); } "
            "int main() { return f(N); }", N=depth)

    def test_overflow_on_tiny_stack(self):
        compilation = self.recursion(100)
        behavior, _machine = compilation.run(stack_bytes=64)
        assert isinstance(behavior, GoesWrong)
        assert "overflow" in behavior.reason

    def test_enough_stack_converges(self):
        compilation = self.recursion(100)
        behavior, _machine = compilation.run(stack_bytes=1 << 16)
        assert isinstance(behavior, Converges)
        assert behavior.return_code == 100

    def test_watermark_grows_with_depth(self):
        shallow = self.recursion(10)
        deep = self.recursion(60)
        _b1, m1 = shallow.run()
        _b2, m2 = deep.run()
        assert m2.measured_stack_usage > m1.measured_stack_usage
        per_frame = (m2.measured_stack_usage - m1.measured_stack_usage) / 50
        assert per_frame == shallow.metric.cost("f")

    def test_measured_equals_bound_minus_4(self):
        from repro.analyzer import StackAnalyzer

        compilation = compile_(
            "int g() { return 1; } int f() { return g(); } "
            "int main() { return f(); }")
        analysis = StackAnalyzer(compilation.clight).analyze()
        bound = analysis.bound_bytes("main", compilation.metric)
        _behavior, machine = compilation.run()
        assert machine.measured_stack_usage == bound - 4

    def test_runs_exactly_at_measured_stack(self):
        compilation = self.recursion(20)
        _behavior, machine = compilation.run()
        needed = machine.measured_stack_usage
        # +4 for main's pushed return address
        ok, _m = compilation.run(stack_bytes=needed + 4)
        assert isinstance(ok, Converges)
        bad, _m = compilation.run(stack_bytes=needed + 3)
        assert isinstance(bad, GoesWrong)


class TestMachineInternals:
    def test_global_addresses_disjoint_and_aligned(self):
        compilation = compile_(
            "double d; char c; int i; int main() { return 0; }")
        machine = AsmMachine(compilation.asm)
        addresses = machine.global_addr
        assert addresses["d"] % 4 == 0
        assert addresses["i"] % 4 == 0
        assert len(set(addresses.values())) == 3
        assert min(addresses.values()) >= GLOBAL_BASE

    def test_memory_bounds_checked(self):
        compilation = compile_("int main() { return 0; }")
        machine = AsmMachine(compilation.asm)
        from repro.errors import MemoryError_

        with pytest.raises(MemoryError_):
            machine.load(Chunk.INT32, 0)  # NULL page
        with pytest.raises(MemoryError_):
            machine.load(Chunk.INT32, len(machine.memory))

    def test_misaligned_access_rejected(self):
        compilation = compile_("int main() { return 0; }")
        machine = AsmMachine(compilation.asm)
        from repro.errors import MemoryError_

        with pytest.raises(MemoryError_):
            machine.load(Chunk.INT32, GLOBAL_BASE + 2)

    def test_esp_underflow_raises(self):
        compilation = compile_("int main() { return 0; }")
        machine = AsmMachine(compilation.asm, stack_bytes=16)
        machine.start()
        with pytest.raises(StackOverflowError_):
            machine._set_esp(machine.stack_base - 1)

    def test_run_program_function(self):
        compilation = compile_("int main() { return 9; }")
        behavior, machine = run_program(compilation.asm)
        assert behavior.return_code == 9
        assert machine.steps > 0
