/* MiBench office/stringsearch (adapted).  Boyer–Moore–Horspool over
 * byte arrays (the original's C strings become u8 buffers with explicit
 * lengths).  Additional coverage beyond Table 1. */

#define TEXT_LEN 2048
#define PAT_LEN 8

typedef unsigned int u32;
typedef unsigned char u8;

u8 text[TEXT_LEN];
u8 pattern[PAT_LEN];
int skip[256];
u32 seed = 0x57217;

u32 rnd() {
    seed = seed * 1664525 + 1013904223;
    return seed;
}

/* Build the bad-character skip table for the pattern. */
void init_search(u8 *pat, int patlen) {
    int i;
    for (i = 0; i < 256; i++) skip[i] = patlen;
    for (i = 0; i < patlen - 1; i++) skip[pat[i]] = patlen - i - 1;
}

/* Horspool scan; returns the first match position or -1. */
int strsearch(u8 *string, int stringlen, u8 *pat, int patlen) {
    int i, j, pos;
    pos = patlen - 1;
    while (pos < stringlen) {
        i = pos;
        j = patlen - 1;
        while (j >= 0 && string[i] == pat[j]) {
            i = i - 1;
            j = j - 1;
        }
        if (j < 0) {
            return i + 1;
        }
        pos = pos + skip[string[pos]];
    }
    return -1;
}

/* Reference implementation: naive quadratic scan. */
int naive_search(u8 *string, int stringlen, u8 *pat, int patlen) {
    int i, j;
    for (i = 0; i + patlen <= stringlen; i++) {
        for (j = 0; j < patlen; j++) {
            if (string[i + j] != pat[j]) break;
        }
        if (j == patlen) return i;
    }
    return -1;
}

int main() {
    int i, planted, fast, slow, ok = 1;

    for (i = 0; i < TEXT_LEN; i++) text[i] = (u8)(rnd() % 26 + 65);
    for (i = 0; i < PAT_LEN; i++) pattern[i] = (u8)(rnd() % 26 + 65);
    /* Plant one guaranteed occurrence. */
    planted = (int)(rnd() % (TEXT_LEN - PAT_LEN));
    for (i = 0; i < PAT_LEN; i++) text[planted + i] = pattern[i];

    init_search(pattern, PAT_LEN);
    fast = strsearch(text, TEXT_LEN, pattern, PAT_LEN);
    slow = naive_search(text, TEXT_LEN, pattern, PAT_LEN);
    if (fast != slow) ok = 0;
    if (fast < 0 || fast > planted) ok = 0;
    print_int(fast);
    return ok;
}
