"""Tests for the heap-resource instantiation of the event framework.

The paper's §8: the same trace/metric machinery applies to other
resources.  Here the statement under test is the heap analogue of the
stack story: the heap weight of the *source-level* trace equals the
arena consumption of the *compiled* program on ASMsz.
"""

import pytest

from repro.clight.semantics import run_program as run_clight
from repro.driver import compile_c
from repro.events.heap import HeapMetric, allocation_sizes, heap_usage
from repro.events.trace import IOEvent
from repro.programs.loader import load_source


def compile_and_run(source, **macros):
    compilation = compile_c(source,
                            macros={k: str(v) for k, v in macros.items()})
    clight_behavior = run_clight(compilation.clight, fuel=50_000_000)
    asm_behavior, machine = compilation.run(fuel=100_000_000)
    return clight_behavior, asm_behavior, machine


class TestHeapEvents:
    def test_malloc_emits_size_event(self):
        behavior, _asm, _machine = compile_and_run(
            "int main() { void *p = malloc(24); return p != 0; }")
        assert IOEvent("malloc", [24], 0) in behavior.trace

    def test_event_identical_across_levels(self):
        clight_behavior, asm_behavior, _machine = compile_and_run(
            "int main() { malloc(8); malloc(40); return 0; }")
        assert allocation_sizes(clight_behavior.trace) == [8, 40]
        assert clight_behavior.pruned().trace == asm_behavior.pruned().trace

    def test_pointer_not_in_event(self):
        behavior, _asm, _machine = compile_and_run(
            "int main() { int *p = malloc(4); *p = 1; return *p; }")
        (event,) = [e for e in behavior.trace
                    if isinstance(e, IOEvent) and e.name == "malloc"]
        assert event.args == (4,)
        assert event.result == 0


class TestHeapMetric:
    def test_alignment_pricing(self):
        metric = HeapMetric()
        assert metric(IOEvent("malloc", [1], 0)) == 8
        assert metric(IOEvent("malloc", [8], 0)) == 8
        assert metric(IOEvent("malloc", [9], 0)) == 16
        assert metric(IOEvent("malloc", [0], 0)) == 8  # min allocation

    def test_other_events_free(self):
        metric = HeapMetric()
        assert metric(IOEvent("print_int", [1], 0)) == 0
        from repro.events.trace import CallEvent

        assert metric(CallEvent("f")) == 0

    def test_heap_usage_sums(self):
        trace = (IOEvent("malloc", [8], 0), IOEvent("print_int", [1], 0),
                 IOEvent("malloc", [20], 0))
        assert heap_usage(trace) == 8 + 24


class TestEndToEnd:
    def test_trace_weight_equals_arena_consumption(self):
        clight_behavior, _asm, machine = compile_and_run(
            "int main() { "
            "for (int i = 0; i < 10; i++) malloc(12); "
            "malloc(100); return 0; }")
        predicted = heap_usage(clight_behavior.trace)
        assert predicted == machine.measured_heap_usage == 10 * 16 + 104

    def test_dijkstra_queue_allocation_accounted(self):
        source = load_source("mibench/dijkstra.c")
        compilation = compile_c(source, filename="dijkstra.c")
        clight_behavior = run_clight(compilation.clight, fuel=150_000_000)
        _asm, machine = compilation.run(fuel=150_000_000)
        predicted = heap_usage(clight_behavior.trace)
        assert predicted == machine.measured_heap_usage
        assert predicted > 0  # the work queue mallocs its nodes

    def test_no_mallocs_no_heap(self):
        _clight, _asm, machine = compile_and_run(
            "int main() { return 3; }")
        assert machine.measured_heap_usage == 0
