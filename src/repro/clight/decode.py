"""Pre-decoded (threaded-code) execution engine for Clight.

The legacy interpreter in :mod:`repro.clight.semantics` re-walks the
statement tree on every small step: an ``isinstance`` chain over the
current statement, a recursive ``isinstance``-dispatched ``eval_expr``
per expression, and string-keyed dicts for temporaries and stack blocks.
This module compiles each :class:`~repro.clight.ast.Program` *once* into
per-statement closures (classic threaded code):

* every statement becomes a closure ``op(m) -> next_op | None`` — the
  hot loop is just ``code = code(m)``; ``None`` means the program is
  done;
* every expression becomes a closure ``ev(m) -> Value`` with constants,
  temp slots, global addresses and operator strings resolved at decode
  time;
* temporaries and stack blocks move from name-keyed dicts to per-frame
  lists with indices assigned at decode time;
* continuations are flat tuples ``(tag, ...)`` with integer tags instead
  of ``Kont`` class instances.

Decoding is cached per program in a ``WeakKeyDictionary`` and is fully
machine-independent: closures receive the machine as their argument, so
one decode serves every execution (the campaign runs each seed's Clight
program once, but golden-suite programs and benchmarks re-run).

The engine is observably equivalent to the legacy step loop by
construction: same events in the same order, the same one step per
legacy ``step()`` call, the same memory-allocation order (hence
identical block ids inside error messages), and byte-identical error
messages.  ``tests/unit/test_sem_decode.py`` checks agreement on traces,
outputs, return codes, failure reasons and step counts over the program
catalog and generated seeds at every ablation; the legacy loop stays
available behind ``run_program(..., decoded=False)`` as the oracle.
"""

from __future__ import annotations

from typing import Callable, Optional
from weakref import WeakKeyDictionary

from repro import obs
from repro.clight import ast as cl
from repro.errors import (DynamicError, FuelExhaustedError, MemoryError_,
                          UndefinedBehaviorError)
from repro.events.stream import Consumer, StreamOutcome
from repro.events.trace import CallEvent, ReturnEvent
from repro import ints
from repro.memory import Memory
from repro.memory.chunks import Chunk
from repro.memory.values import VFloat, VInt, VPtr, VUndef
from repro.ops import (_FLOAT_BINOPS, _FLOAT_COMPARES, _INT_BINOPS,
                       _INT_COMPARES, eval_binop, eval_unop)
from repro.runtime import call_external

#: Shared "no value yet" instance — ``VUndef`` compares by type only, so
#: one instance is indistinguishable from the fresh ones the legacy
#: interpreter creates.
UNDEF = VUndef()
_VINT0 = VInt(0)

# Continuation tags.  Layouts (``next`` is always the last element):
#   (KSTOP,)
#   (KSEQ, stmt_op, next)
#   (KLOOP1, post_op, loop_op, next)    running the loop body
#   (KLOOP2, loop_op, next)             running the post statement
#   (KBLOCK, next)
#   (KCALL, dest_slot, caller_rec, caller_temps, caller_blocks, next)
KSTOP, KSEQ, KLOOP1, KLOOP2, KBLOCK, KCALL = range(6)
K_STOP = (KSTOP,)

#: Shared frame-block list for functions without stack variables; it is
#: written once at call entry and only read afterwards, so one instance
#: can serve every frame.
_NO_BLOCKS: list = []


class DecodedFunction:
    """Per-function decode result (two-phase: created, then filled)."""

    __slots__ = ("name", "entry", "n_params", "n_temps", "param_slots",
                 "block_spec", "call_event", "ret_event")

    def __init__(self, function: cl.Function) -> None:
        self.name = function.name
        self.n_params = len(function.params)
        # One shared event instance per function: events are immutable
        # and structurally compared, so re-emitting the same object is
        # indistinguishable from the fresh ones the legacy machine makes.
        self.call_event = CallEvent(function.name)
        self.ret_event = ReturnEvent(function.name)
        self.entry: Callable = None  # filled by decode_program
        self.n_temps = 0
        self.param_slots: tuple[int, ...] = ()
        #: ``(size, tag)`` per stack variable, in declaration order (the
        #: allocation — and hence free — order of the legacy machine).
        self.block_spec: tuple[tuple[int, str], ...] = ()


class DecodedProgram:
    __slots__ = ("functions", "main", "globals_index")

    def __init__(self, program: cl.Program) -> None:
        self.functions = {name: DecodedFunction(fn)
                          for name, fn in program.functions.items()}
        self.main = program.main
        self.globals_index = {var.name: index
                              for index, var in enumerate(program.globals)}


class _FunctionContext:
    """Decode-time state for one function."""

    def __init__(self, program: cl.Program, dprog: DecodedProgram,
                 function: cl.Function) -> None:
        self.program = program
        self.dprog = dprog
        self.name = function.name
        self.temp_slots: dict[str, int] = {}
        for temp in function.temps:
            self.temp_slot(temp)
        for param in function.params:
            self.temp_slot(param)
        self.stack_slots = {var.name: index
                            for index, var in enumerate(function.stackvars)}

    def temp_slot(self, name: str) -> int:
        slot = self.temp_slots.get(name)
        if slot is None:
            slot = len(self.temp_slots)
            self.temp_slots[name] = slot
        return slot


# ---------------------------------------------------------------------------
# Expression decoding: closures ``ev(m) -> Value``
# ---------------------------------------------------------------------------


def _decode_expr(expr: cl.Expr, ctx: _FunctionContext):
    if isinstance(expr, cl.EConstInt):
        value = VInt(expr.value)
        return lambda m: value
    if isinstance(expr, cl.EConstFloat):
        value = VFloat(expr.value)
        return lambda m: value
    if isinstance(expr, cl.ETemp):
        slot = ctx.temp_slot(expr.name)
        return lambda m: m.temps[slot]
    if isinstance(expr, cl.EAddrGlobal):
        index = ctx.dprog.globals_index.get(expr.name)
        if index is None:
            name = expr.name

            def ev(m):
                raise UndefinedBehaviorError(f"unknown global {name!r}")
            return ev
        return lambda m: m.gptrs[index]
    if isinstance(expr, cl.EAddrStack):
        slot = ctx.stack_slots.get(expr.name)
        if slot is None:
            name = expr.name

            def ev(m):
                raise UndefinedBehaviorError(
                    f"unknown stack variable {name!r}")
            return ev
        return lambda m: m.blocks[slot]
    if isinstance(expr, cl.ELoad):
        return _decode_load(expr, ctx)
    if isinstance(expr, cl.EUnop):
        return _decode_unop(expr.op, _decode_expr(expr.arg, ctx))
    if isinstance(expr, cl.EBinop):
        return _decode_binop(expr.op, expr.left, expr.right, ctx)
    type_name = type(expr).__name__

    def ev(m):
        raise DynamicError(f"unknown expression {type_name}")
    return ev


# Operator specialization: resolve the operator function at decode time
# and inline the common monomorphic case (all-int / all-float operands).
# Every other case — pointers, undef, type errors, unknown operators —
# falls back to the legacy ``eval_unop``/``eval_binop``, which raises the
# exact same errors the legacy interpreter would.

_VFALSE = VInt(0)
_VTRUE = VInt(1)

# Direct formulas for the pure-bitwise/arithmetic binops: operands are
# already in unsigned 32-bit representation, so the only mask needed is
# the one VInt.__init__ applies to the result.  (Division and modulo
# stay on the checked ints.* helpers: they can go wrong.)
_DIRECT_INT_BINOPS = {
    "mul": lambda a, b: a * b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << (b & 31),
    "shru": lambda a, b: a >> (b & 31),
    "shrs": lambda a, b:
        (a - 0x100000000 if a > 0x7FFFFFFF else a) >> (b & 31),
}

_FAST_INT_UNOPS = {
    "neg": ints.neg,
    "notint": ints.not_,
    "cast8signed": ints.sign_extend8,
    "cast8unsigned": ints.wrap8,
    "cast16signed": ints.sign_extend16,
    "cast16unsigned": ints.wrap16,
}


def _decode_unop(op, arg_ev):
    fn = _FAST_INT_UNOPS.get(op)
    if fn is not None:
        def ev(m):
            value = arg_ev(m)
            if type(value) is VInt:
                return VInt(fn(value.value))
            return eval_unop(op, value)
        return ev
    if op == "notbool":
        def ev(m):
            value = arg_ev(m)
            if type(value) is VInt:
                return _VFALSE if value.value != 0 else _VTRUE
            return eval_unop(op, value)
        return ev
    return lambda m: eval_unop(op, arg_ev(m))


def _atom(expr, ctx):
    """Inlinable operand: ``(temp_slot, const)`` — at most one is set."""
    if isinstance(expr, cl.ETemp):
        return ctx.temp_slot(expr.name), None
    if isinstance(expr, cl.EConstInt):
        return None, VInt(expr.value)
    return None, None


def _flatten_addr(addr, ctx):
    """Flatten an address tree into ``base + temps[slot]*scale + const``.

    The frontend lowers every array/struct access into left-nested
    ``add`` chains whose leftmost leaf is the base pointer (a temp, a
    stack variable or a global) and whose right operands are constants,
    plain index temps, or ``mul(temp, size)`` scaled indices.  Returns
    ``(kind, base_index, slot, scale, const)`` with ``kind`` one of
    ``"temp" | "stack" | "global"`` and ``slot`` possibly ``None``, or
    ``None`` when the shape is anything else.
    """
    const = 0
    slot = None
    scale = 1
    e = addr
    while isinstance(e, cl.EBinop) and e.op == "add":
        r = e.right
        if isinstance(r, cl.EConstInt):
            const += r.value
        elif isinstance(r, cl.ETemp) and slot is None:
            slot = ctx.temp_slot(r.name)
        elif (slot is None and isinstance(r, cl.EBinop) and r.op == "mul"
                and isinstance(r.left, cl.ETemp)
                and isinstance(r.right, cl.EConstInt)):
            slot = ctx.temp_slot(r.left.name)
            scale = r.right.value
        else:
            return None
        e = e.left
    if isinstance(e, cl.ETemp):
        return "temp", ctx.temp_slot(e.name), slot, scale, const
    if isinstance(e, cl.EAddrStack):
        index = ctx.stack_slots.get(e.name)
        if index is None:
            return None
        return "stack", index, slot, scale, const
    if isinstance(e, cl.EAddrGlobal):
        index = ctx.dprog.globals_index.get(e.name)
        if index is None:
            return None
        return "global", index, slot, scale, const
    return None


def _addr_fallback_load(chunk, addr, ctx):
    """Legacy-ordered load used when a fused address guard fails."""
    addr_ev = _decode_expr(addr, ctx)

    def ev(m):
        value = addr_ev(m)
        if not isinstance(value, VPtr):
            raise MemoryError_(f"load through non-pointer {value!r}")
        return m.memory.load_at(chunk, value.block, value.offset)
    return ev


def _decode_load(expr, ctx):
    """A load closure with the address computation fused in.

    Any address of the shape ``base + index*scale + const`` (the output
    of the frontend's array and struct lowering) goes through
    :meth:`Memory.load_at` without materializing the scaled index or the
    address ``VPtr``.  Stack and global bases are known pointers at
    offset 0, so their fused form is a plain table lookup.  Whenever a
    runtime guard fails (non-pointer base, non-integer index) the
    address is re-evaluated through the generic expression closures, so
    every error is byte-identical to the legacy evaluation.
    """
    chunk = expr.chunk
    addr = expr.addr
    parts = _flatten_addr(addr, ctx)
    if parts is not None:
        kind, bi, slot, scale, const = parts
        if kind == "temp":
            fb = _addr_fallback_load(chunk, addr, ctx)
            if slot is None:
                if const == 0:
                    def ev(m):
                        base = m.temps[bi]
                        if type(base) is VPtr:
                            return m.memory.load_at(
                                chunk, base.block, base.offset)
                        return fb(m)
                    return ev

                def ev(m):
                    base = m.temps[bi]
                    if type(base) is VPtr:
                        return m.memory.load_at(
                            chunk, base.block,
                            (base.offset + const) & 0xFFFFFFFF)
                    return fb(m)
                return ev

            def ev(m):
                temps = m.temps
                base = temps[bi]
                off = temps[slot]
                if type(base) is VPtr and type(off) is VInt:
                    return m.memory.load_at(
                        chunk, base.block,
                        (base.offset + off.value * scale + const)
                        & 0xFFFFFFFF)
                return fb(m)
            return ev
        # Stack and global bases are always block pointers at offset 0.
        if slot is None:
            offset = const & 0xFFFFFFFF
            if kind == "stack":
                return lambda m: m.memory.load_at(
                    chunk, m.blocks[bi].block, offset)
            return lambda m: m.memory.load_at(
                chunk, m.gptrs[bi].block, offset)
        fb = _addr_fallback_load(chunk, addr, ctx)
        if kind == "stack":
            def ev(m):
                off = m.temps[slot]
                if type(off) is VInt:
                    return m.memory.load_at(
                        chunk, m.blocks[bi].block,
                        (off.value * scale + const) & 0xFFFFFFFF)
                return fb(m)
            return ev

        def ev(m):
            off = m.temps[slot]
            if type(off) is VInt:
                return m.memory.load_at(
                    chunk, m.gptrs[bi].block,
                    (off.value * scale + const) & 0xFFFFFFFF)
            return fb(m)
        return ev
    return _addr_fallback_load(chunk, addr, ctx)


def _decode_binop(op, left_x, right_x, ctx):
    """Specialized binop closure.

    Operand fetches for temporaries and integer constants are inlined
    (no per-operand closure call); the monomorphic int/int and common
    pointer cases run without touching ``eval_binop``.  Everything else
    falls back to it for the legacy result or error.
    """
    ls, lc = _atom(left_x, ctx)
    rs, rc = _atom(right_x, ctx)
    left_ev = _decode_expr(left_x, ctx)
    right_ev = _decode_expr(right_x, ctx)
    rcv = rc.value if rc is not None else None

    if op == "add":
        if ls is not None and rc is not None:
            def ev(m):
                left = m.temps[ls]
                tl = type(left)
                if tl is VInt:
                    return VInt(left.value + rcv)
                if tl is VPtr:
                    return left.add(rcv)
                return eval_binop(op, left, rc)
            return ev
        if ls is not None and rs is not None:
            def ev(m):
                temps = m.temps
                left = temps[ls]
                right = temps[rs]
                tl = type(left)
                if tl is VInt:
                    if type(right) is VInt:
                        return VInt(left.value + right.value)
                    if type(right) is VPtr:
                        return right.add(left.value)
                elif tl is VPtr and type(right) is VInt:
                    return left.add(right.value)
                return eval_binop(op, left, right)
            return ev

        def ev(m):
            left = left_ev(m)
            right = right_ev(m)
            tl = type(left)
            if tl is VInt:
                if type(right) is VInt:
                    return VInt(left.value + right.value)
                if type(right) is VPtr:
                    return right.add(left.value)
            elif tl is VPtr and type(right) is VInt:
                return left.add(right.value)
            return eval_binop(op, left, right)
        return ev
    if op == "sub":
        def ev(m):
            left = left_ev(m)
            right = right_ev(m)
            tl = type(left)
            if tl is VInt and type(right) is VInt:
                return VInt(left.value - right.value)
            if tl is VPtr:
                if type(right) is VInt:
                    return left.add(-right.value)
                if type(right) is VPtr and left.block == right.block:
                    return VInt(left.offset - right.offset)
            return eval_binop(op, left, right)
        return ev
    fn = _DIRECT_INT_BINOPS.get(op) or _INT_BINOPS.get(op)
    if fn is not None:
        if ls is not None and rc is not None:
            def ev(m):
                left = m.temps[ls]
                if type(left) is VInt:
                    return VInt(fn(left.value, rcv))
                return eval_binop(op, left, rc)
            return ev
        if ls is not None and rs is not None:
            def ev(m):
                temps = m.temps
                left = temps[ls]
                right = temps[rs]
                if type(left) is VInt and type(right) is VInt:
                    return VInt(fn(left.value, right.value))
                return eval_binop(op, left, right)
            return ev

        def ev(m):
            left = left_ev(m)
            right = right_ev(m)
            if type(left) is VInt and type(right) is VInt:
                return VInt(fn(left.value, right.value))
            return eval_binop(op, left, right)
        return ev
    fn = _INT_COMPARES.get(op)
    if fn is not None:
        if ls is not None and rc is not None:
            def ev(m):
                left = m.temps[ls]
                if type(left) is VInt:
                    return _VTRUE if fn(left.value, rcv) else _VFALSE
                return eval_binop(op, left, rc)
            return ev
        if ls is not None and rs is not None:
            def ev(m):
                temps = m.temps
                left = temps[ls]
                right = temps[rs]
                if type(left) is VInt and type(right) is VInt:
                    return _VTRUE if fn(left.value, right.value) else _VFALSE
                if (type(left) is VPtr and type(right) is VPtr
                        and left.block == right.block):
                    return _VTRUE if fn(left.offset, right.offset) else _VFALSE
                return eval_binop(op, left, right)
            return ev

        def ev(m):
            left = left_ev(m)
            right = right_ev(m)
            if type(left) is VInt and type(right) is VInt:
                return _VTRUE if fn(left.value, right.value) else _VFALSE
            if (type(left) is VPtr and type(right) is VPtr
                    and left.block == right.block):
                return _VTRUE if fn(left.offset, right.offset) else _VFALSE
            return eval_binop(op, left, right)
        return ev
    fn = _FLOAT_BINOPS.get(op)
    if fn is not None:
        def ev(m):
            left = left_ev(m)
            right = right_ev(m)
            if type(left) is VFloat and type(right) is VFloat:
                return VFloat(fn(left.value, right.value))
            return eval_binop(op, left, right)
        return ev
    fn = _FLOAT_COMPARES.get(op)
    if fn is not None:
        def ev(m):
            left = left_ev(m)
            right = right_ev(m)
            if type(left) is VFloat and type(right) is VFloat:
                return _VTRUE if fn(left.value, right.value) else _VFALSE
            return eval_binop(op, left, right)
        return ev
    return lambda m: eval_binop(op, left_ev(m), right_ev(m))


# ---------------------------------------------------------------------------
# Shared control closures (one step each, mirroring the legacy machine)
# ---------------------------------------------------------------------------


def _do_return(m, value):
    """Return from the current function: free blocks, unwind, emit ret."""
    blocks = m.blocks
    if blocks:
        free = m.memory.free
        for ptr in blocks:
            free(ptr)
    k = m.kont
    while k[0] != KCALL:
        if k[0] == KSTOP:
            raise DynamicError("return with a corrupt continuation")
        k = k[-1]
    event = m.frec.ret_event
    next_kont = k[5]
    if next_kont[0] == KSTOP:
        # The outermost function returned: the program converges.
        m.done = True
        if k[1] is not None:
            k[3][k[1]] = value if value is not None else UNDEF
        if value is None:
            value = _VINT0
        m.return_code = value.signed if isinstance(value, VInt) else 0
        m.sink(event)
        return None
    m.temps = k[3]
    m.blocks = k[4]
    m.frec = k[2]
    if k[1] is not None:
        m.temps[k[1]] = value if value is not None else UNDEF
    m.kont = next_kont
    m.sink(event)
    return _skip


def _skip(m):
    k = m.kont
    tag = k[0]
    if tag == KSEQ:
        m.kont = k[2]
        return k[1]
    if tag == KLOOP1:
        m.kont = (KLOOP2, k[2], k[3])
        return k[1]
    if tag == KLOOP2:
        m.kont = k[2]
        return k[1]
    if tag == KBLOCK:
        m.kont = k[1]
        return _skip
    if tag == KCALL:
        # Fall through the end of a function body: return no value.
        return _do_return(m, None)
    m.done = True
    m.return_code = 0
    return None


def _break(m):
    k = m.kont
    while k[0] == KSEQ:
        k = k[2]
    tag = k[0]
    if tag == KLOOP1 or tag == KLOOP2 or tag == KBLOCK:
        m.kont = k[-1]
        return _skip
    raise DynamicError("break outside of a loop or block")


def _continue(m):
    k = m.kont
    while k[0] == KSEQ or k[0] == KBLOCK:
        k = k[-1]
    if k[0] == KLOOP1:
        m.kont = (KLOOP2, k[2], k[3])
        return k[1]
    raise DynamicError("continue outside of a loop body")


def _return_none(m):
    return _do_return(m, None)


# ---------------------------------------------------------------------------
# Statement decoding: closures ``op(m) -> next_op | None``
# ---------------------------------------------------------------------------


def _decode_stmt(stmt: cl.Stmt, ctx: _FunctionContext):
    if isinstance(stmt, cl.SSkip):
        return _skip
    if isinstance(stmt, cl.SSeq):
        first = _decode_stmt(stmt.first, ctx)
        second = _decode_stmt(stmt.second, ctx)

        def op(m):
            m.kont = (KSEQ, second, m.kont)
            return first
        return op
    if isinstance(stmt, cl.SSet):
        slot = ctx.temp_slot(stmt.temp)
        src, const = _atom(stmt.expr, ctx)
        if src is not None:
            def op(m):
                temps = m.temps
                temps[slot] = temps[src]
                return _skip
            return op
        if const is not None:
            def op(m):
                m.temps[slot] = const
                return _skip
            return op
        ev = _decode_expr(stmt.expr, ctx)

        def op(m):
            m.temps[slot] = ev(m)
            return _skip
        return op
    if isinstance(stmt, cl.SStore):
        return _decode_store(stmt, ctx)
    if isinstance(stmt, cl.SIf):
        then_op = _decode_stmt(stmt.then, ctx)
        else_op = _decode_stmt(stmt.otherwise, ctx)
        cond = stmt.cond
        # Fuse an integer-compare condition into the branch: no closure
        # call and no boolean VInt allocation on the hot path.  The
        # fallback re-evaluates through eval_binop, whose result (or
        # error) is exactly the legacy condition value.
        if isinstance(cond, cl.EBinop):
            fn = _INT_COMPARES.get(cond.op)
            ls, _lc = _atom(cond.left, ctx)
            rs, rc = _atom(cond.right, ctx)
            if fn is not None and ls is not None and rc is not None:
                cop = cond.op
                rcv = rc.value

                def op(m):
                    left = m.temps[ls]
                    if type(left) is VInt:
                        return then_op if fn(left.value, rcv) else else_op
                    if eval_binop(cop, left, rc).is_true():
                        return then_op
                    return else_op
                return op
            if fn is not None and ls is not None and rs is not None:
                cop = cond.op

                def op(m):
                    temps = m.temps
                    left = temps[ls]
                    right = temps[rs]
                    if type(left) is VInt and type(right) is VInt:
                        return then_op if fn(left.value, right.value) else else_op
                    if eval_binop(cop, left, right).is_true():
                        return then_op
                    return else_op
                return op
        cond_ev = _decode_expr(cond, ctx)

        def op(m):
            return then_op if cond_ev(m).is_true() else else_op
        return op
    if isinstance(stmt, cl.SLoop):
        body_op = _decode_stmt(stmt.body, ctx)
        post_op = _decode_stmt(stmt.post, ctx)

        def op(m):
            m.kont = (KLOOP1, post_op, op, m.kont)
            return body_op
        return op
    if isinstance(stmt, cl.SBlock):
        body_op = _decode_stmt(stmt.body, ctx)

        def op(m):
            m.kont = (KBLOCK, m.kont)
            return body_op
        return op
    if isinstance(stmt, cl.SBreak):
        return _break
    if isinstance(stmt, cl.SContinue):
        return _continue
    if isinstance(stmt, cl.SReturn):
        if stmt.value is None:
            return _return_none
        value_ev = _decode_expr(stmt.value, ctx)

        def op(m):
            return _do_return(m, value_ev(m))
        return op
    if isinstance(stmt, cl.SCall):
        return _decode_call(stmt, ctx)
    type_name = type(stmt).__name__

    def op(m):
        raise DynamicError(f"unknown statement {type_name}")
    return op



def _decode_store(stmt: cl.SStore, ctx: _FunctionContext):
    """A store op with the address fused, mirroring :func:`_decode_load`.

    The legacy machine evaluates the address, then the value, and only
    then checks pointer-ness; the fused variants keep that order by
    falling back to the generic op whenever an address guard fails.
    """
    chunk = stmt.chunk
    # ``normalize`` is the identity for word stores: skip the call.
    normalize = None if chunk is Chunk.INT32 else chunk.normalize
    addr_ev = _decode_expr(stmt.addr, ctx)
    value_ev = _decode_expr(stmt.value, ctx)

    def fbop(m):
        addr = addr_ev(m)
        value = value_ev(m)
        if not isinstance(addr, VPtr):
            raise MemoryError_(f"store through non-pointer {addr!r}")
        m.memory.store(chunk, addr, chunk.normalize(value))
        return _skip

    parts = _flatten_addr(stmt.addr, ctx)
    if parts is None:
        return fbop
    kind, bi, slot, scale, const = parts
    if kind == "temp":
        if slot is None:
            def op(m):
                base = m.temps[bi]
                if type(base) is not VPtr:
                    return fbop(m)
                value = value_ev(m)
                if normalize is not None:
                    value = normalize(value)
                m.memory.store_at(chunk, base.block,
                                  (base.offset + const) & 0xFFFFFFFF, value)
                return _skip
            return op

        def op(m):
            temps = m.temps
            base = temps[bi]
            off = temps[slot]
            if type(base) is not VPtr or type(off) is not VInt:
                return fbop(m)
            value = value_ev(m)
            if normalize is not None:
                value = normalize(value)
            m.memory.store_at(
                chunk, base.block,
                (base.offset + off.value * scale + const) & 0xFFFFFFFF,
                value)
            return _skip
        return op
    if slot is None:
        offset = const & 0xFFFFFFFF
        if kind == "stack":
            def op(m):
                value = value_ev(m)
                if normalize is not None:
                    value = normalize(value)
                m.memory.store_at(chunk, m.blocks[bi].block, offset, value)
                return _skip
            return op

        def op(m):
            value = value_ev(m)
            if normalize is not None:
                value = normalize(value)
            m.memory.store_at(chunk, m.gptrs[bi].block, offset, value)
            return _skip
        return op
    if kind == "stack":
        def op(m):
            off = m.temps[slot]
            if type(off) is not VInt:
                return fbop(m)
            value = value_ev(m)
            if normalize is not None:
                value = normalize(value)
            m.memory.store_at(
                chunk, m.blocks[bi].block,
                (off.value * scale + const) & 0xFFFFFFFF, value)
            return _skip
        return op

    def op(m):
        off = m.temps[slot]
        if type(off) is not VInt:
            return fbop(m)
        value = value_ev(m)
        if normalize is not None:
            value = normalize(value)
        m.memory.store_at(
            chunk, m.gptrs[bi].block,
            (off.value * scale + const) & 0xFFFFFFFF, value)
        return _skip
    return op


def _decode_call(stmt: cl.SCall, ctx: _FunctionContext):
    arg_evs = tuple(_decode_expr(arg, ctx) for arg in stmt.args)
    dest_slot = ctx.temp_slot(stmt.dest) if stmt.dest is not None else None

    if ctx.program.is_internal(stmt.callee):
        callee = ctx.program.function(stmt.callee)
        if len(stmt.args) != len(callee.params):
            # The legacy machine evaluates the arguments and only then
            # checks the arity, so argument evaluation errors win.
            message = (f"{callee.name} expects {len(callee.params)} args, "
                       f"got {len(stmt.args)}")

            def op(m):
                for ev in arg_evs:
                    ev(m)
                raise UndefinedBehaviorError(message)
            return op
        rec = ctx.dprog.functions[stmt.callee]
        # ``rec`` may not be filled yet (mutual recursion), but the
        # callee's source-level arity and stack-variable count are
        # already known, so the op can be specialized on them now.
        if not callee.stackvars:
            if len(arg_evs) == 0:
                def op(m):
                    m.kont = (KCALL, dest_slot, m.frec, m.temps, m.blocks,
                              m.kont)
                    m.temps = [UNDEF] * rec.n_temps
                    m.blocks = _NO_BLOCKS
                    m.frec = rec
                    m.sink(rec.call_event)
                    return rec.entry
                return op
            if len(arg_evs) == 1:
                ev0, = arg_evs

                def op(m):
                    a0 = ev0(m)
                    m.kont = (KCALL, dest_slot, m.frec, m.temps, m.blocks,
                              m.kont)
                    temps = [UNDEF] * rec.n_temps
                    temps[rec.param_slots[0]] = a0
                    m.temps = temps
                    m.blocks = _NO_BLOCKS
                    m.frec = rec
                    m.sink(rec.call_event)
                    return rec.entry
                return op
            if len(arg_evs) == 2:
                ev0, ev1 = arg_evs

                def op(m):
                    a0 = ev0(m)
                    a1 = ev1(m)
                    m.kont = (KCALL, dest_slot, m.frec, m.temps, m.blocks,
                              m.kont)
                    temps = [UNDEF] * rec.n_temps
                    slots = rec.param_slots
                    temps[slots[0]] = a0
                    temps[slots[1]] = a1
                    m.temps = temps
                    m.blocks = _NO_BLOCKS
                    m.frec = rec
                    m.sink(rec.call_event)
                    return rec.entry
                return op

            def op(m):
                args = [ev(m) for ev in arg_evs]
                m.kont = (KCALL, dest_slot, m.frec, m.temps, m.blocks, m.kont)
                temps = [UNDEF] * rec.n_temps
                for slot, value in zip(rec.param_slots, args):
                    temps[slot] = value
                m.temps = temps
                m.blocks = _NO_BLOCKS
                m.frec = rec
                m.sink(rec.call_event)
                return rec.entry
            return op

        def op(m):
            args = [ev(m) for ev in arg_evs]
            m.kont = (KCALL, dest_slot, m.frec, m.temps, m.blocks, m.kont)
            temps = [UNDEF] * rec.n_temps
            for slot, value in zip(rec.param_slots, args):
                temps[slot] = value
            alloc = m.memory.alloc
            m.temps = temps
            m.blocks = [alloc(size, tag=tag) for size, tag in rec.block_spec]
            m.frec = rec
            m.sink(rec.call_event)
            return rec.entry
        return op

    callee_name = stmt.callee

    def op(m):
        args = [ev(m) for ev in arg_evs]
        result, event = call_external(callee_name, args, alloc=m.alloc_heap,
                                      output=m.output)
        if dest_slot is not None:
            m.temps[dest_slot] = result
        if event is not None:
            m.sink(event)
        return _skip
    return op


# ---------------------------------------------------------------------------
# Program decoding (cached) and the machine
# ---------------------------------------------------------------------------


_decoded_cache: "WeakKeyDictionary[cl.Program, DecodedProgram]" = \
    WeakKeyDictionary()


def decode_program(program: cl.Program) -> DecodedProgram:
    """Decode ``program`` into threaded code (cached per program)."""
    dprog = _decoded_cache.get(program)
    if dprog is not None:
        if obs.enabled:
            obs.add("decode.clight.cache.hits")
        return dprog
    if obs.enabled:
        obs.add("decode.clight.cache.misses")
    dprog = DecodedProgram(program)
    for name, function in program.functions.items():
        ctx = _FunctionContext(program, dprog, function)
        rec = dprog.functions[name]
        rec.entry = _decode_stmt(function.body, ctx)
        rec.n_temps = len(ctx.temp_slots)
        rec.param_slots = tuple(ctx.temp_slots[p] for p in function.params)
        rec.block_spec = tuple((var.size, f"{function.name}.{var.name}")
                               for var in function.stackvars)
    _decoded_cache[program] = dprog
    return dprog


class DecodedClightMachine:
    """State of one decoded execution (the ``m`` of every closure)."""

    __slots__ = ("memory", "gptrs", "output", "sink", "temps", "blocks",
                 "frec", "kont", "done", "return_code")

    def __init__(self, program: cl.Program, sink: Consumer,
                 output: Optional[list] = None) -> None:
        self.memory = Memory()
        self.gptrs: list[VPtr] = []
        for var in program.globals:
            ptr = self.memory.alloc(var.size, tag=f"global {var.name}")
            self.memory.store_bytes(ptr, var.image)
            self.gptrs.append(ptr)
        self.output = output
        self.sink = sink
        self.temps: list = []
        self.blocks: list[VPtr] = []
        self.frec: Optional[DecodedFunction] = None
        self.kont: tuple = K_STOP
        self.done = False
        self.return_code: Optional[int] = None

    def alloc_heap(self, size: int) -> VPtr:
        return self.memory.alloc(size, tag="malloc")


def _enter_main(m: DecodedClightMachine, program: cl.Program,
                dprog: DecodedProgram):
    main = program.function(program.main)
    if main.params:
        raise DynamicError("main with parameters is not supported")
    rec = dprog.functions[program.main]
    m.kont = (KCALL, None, None, m.temps, m.blocks, K_STOP)
    m.temps = [UNDEF] * rec.n_temps
    alloc = m.memory.alloc
    m.blocks = [alloc(size, tag=tag) for size, tag in rec.block_spec]
    m.frec = rec
    m.sink(rec.call_event)
    return rec.entry


def run_streamed(program: cl.Program, sink: Consumer, fuel: int,
                 output: Optional[list] = None) -> StreamOutcome:
    """Run the decoded engine, feeding every event into ``sink``.

    The loop mirrors the legacy driver exactly, including the fuel edge
    case: a program whose final return lands on the very last unit of
    fuel is classified as diverging, because the legacy loop never got
    to observe ``done``.
    """
    dprog = decode_program(program)
    counting = _Counting(sink)
    m = DecodedClightMachine(program, counting, output=output)
    i = 0
    code = True  # placeholder: never None before _enter_main returns
    try:
        code = _enter_main(m, program, dprog)
        try:
            # The hot loop has no termination check: when the program is
            # done the previous op returned None, and calling it raises
            # TypeError at exactly the iteration the legacy loop would
            # have broken out of — so ``i`` stays step-accurate.
            for i in range(fuel):
                code = code(m)
        except TypeError:
            if code is not None:  # a genuine TypeError inside an op
                raise
        else:
            return StreamOutcome(StreamOutcome.DIVERGES,
                                 events=counting.count, steps=fuel)
    except FuelExhaustedError:
        return StreamOutcome(StreamOutcome.DIVERGES,
                             events=counting.count, steps=i)
    except DynamicError as exc:
        return StreamOutcome(StreamOutcome.GOES_WRONG, reason=str(exc),
                             events=counting.count, steps=i)
    if not m.done:
        return StreamOutcome(StreamOutcome.DIVERGES,
                             events=counting.count, steps=i)
    return StreamOutcome(StreamOutcome.CONVERGES,
                         return_code=m.return_code,
                         events=counting.count, steps=i)


class _Counting:
    __slots__ = ("sink", "count")

    def __init__(self, sink: Consumer) -> None:
        self.sink = sink
        self.count = 0

    def __call__(self, event) -> None:
        self.count += 1
        self.sink(event)
