"""Property-based tests for machine integers and the memory model."""

import struct

from hypothesis import assume, given
from hypothesis import strategies as st

from repro import ints
from repro.memory import Chunk, Memory, VFloat, VInt

u32 = st.integers(0, ints.MAX_UNSIGNED)
s32 = st.integers(ints.MIN_SIGNED, ints.MAX_SIGNED)
anyint = st.integers(-(1 << 40), 1 << 40)


class TestIntLaws:
    @given(anyint)
    def test_wrap_idempotent(self, x):
        assert ints.wrap(ints.wrap(x)) == ints.wrap(x)

    @given(s32)
    def test_signed_roundtrip(self, x):
        assert ints.to_signed(ints.to_unsigned(x)) == x

    @given(u32)
    def test_unsigned_roundtrip(self, x):
        assert ints.to_unsigned(ints.to_signed(x)) == x

    @given(u32, u32)
    def test_add_commutes(self, a, b):
        assert ints.add(a, b) == ints.add(b, a)

    @given(u32, u32, u32)
    def test_add_associates(self, a, b, c):
        assert ints.add(ints.add(a, b), c) == ints.add(a, ints.add(b, c))

    @given(u32)
    def test_add_neg_is_zero(self, a):
        assert ints.add(a, ints.neg(a)) == 0

    @given(u32, u32)
    def test_sub_add_inverse(self, a, b):
        assert ints.add(ints.sub(a, b), b) == a

    @given(s32, s32)
    def test_signed_division_euclid(self, a, b):
        assume(b != 0)
        assume(not (a == ints.MIN_SIGNED and b == -1))
        ua, ub = ints.to_unsigned(a), ints.to_unsigned(b)
        q = ints.to_signed(ints.div_s(ua, ub))
        r = ints.to_signed(ints.mod_s(ua, ub))
        assert q * b + r == a
        assert abs(r) < abs(b)
        assert r == 0 or (r < 0) == (a < 0)

    @given(u32, u32)
    def test_unsigned_division_euclid(self, a, b):
        assume(b != 0)
        assert ints.div_u(a, b) * b + ints.mod_u(a, b) == a

    @given(u32, st.integers(0, 31))
    def test_shift_roundtrip_via_mask(self, a, k):
        masked = ints.and_(a, ints.shr_u(ints.MAX_UNSIGNED, k))
        assert ints.shr_u(ints.shl(masked, k), k) == masked

    @given(u32, u32)
    def test_comparison_trichotomy_unsigned(self, a, b):
        assert ints.lt_u(a, b) + ints.eq(a, b) + ints.gt_u(a, b) == 1

    @given(s32)
    def test_float_roundtrip(self, x):
        assert ints.to_signed(ints.of_float_signed(float(x))) == x

    @given(u32)
    def test_narrow_chains(self, x):
        assert ints.wrap8(ints.sign_extend8(x)) == ints.wrap8(x)
        assert ints.wrap16(ints.sign_extend16(x)) == ints.wrap16(x)


CHUNK_VALUES = {
    Chunk.INT8_SIGNED: st.integers(-128, 127),
    Chunk.INT8_UNSIGNED: st.integers(0, 255),
    Chunk.INT16_SIGNED: st.integers(-32768, 32767),
    Chunk.INT16_UNSIGNED: st.integers(0, 65535),
    Chunk.INT32: s32,
}


class TestMemoryLaws:
    @given(st.sampled_from(list(CHUNK_VALUES)), st.data())
    def test_store_load_roundtrip(self, chunk, data):
        value = data.draw(CHUNK_VALUES[chunk])
        memory = Memory()
        ptr = memory.alloc(16)
        offset = data.draw(st.integers(0, 2)) * chunk.alignment
        memory.store(chunk, ptr.add(offset), VInt(value))
        assert memory.load(chunk, ptr.add(offset)) == VInt(value)

    @given(st.floats(allow_nan=True, allow_infinity=True))
    def test_float_roundtrip_bitexact(self, x):
        memory = Memory()
        ptr = memory.alloc(8)
        memory.store(Chunk.FLOAT64, ptr, VFloat(x))
        loaded = memory.load(Chunk.FLOAT64, ptr)
        assert struct.pack("<d", loaded.value) == struct.pack("<d", x)

    @given(s32, s32)
    def test_disjoint_stores_do_not_interfere(self, a, b):
        memory = Memory()
        ptr = memory.alloc(8)
        memory.store(Chunk.INT32, ptr, VInt(a))
        memory.store(Chunk.INT32, ptr.add(4), VInt(b))
        assert memory.load(Chunk.INT32, ptr) == VInt(a)
        assert memory.load(Chunk.INT32, ptr.add(4)) == VInt(b)

    @given(s32)
    def test_chunk_encoding_matches_flat_machine(self, value):
        """The block memory and the ASM flat memory share encodings."""
        raw = Chunk.INT32.encode_int(ints.to_unsigned(value))
        assert Chunk.INT32.decode_int(raw) == ints.to_unsigned(value)

    @given(st.sampled_from(list(CHUNK_VALUES)), st.data())
    def test_normalize_matches_store_load(self, chunk, data):
        value = ints.to_unsigned(data.draw(s32))
        memory = Memory()
        ptr = memory.alloc(8)
        memory.store(chunk, ptr, chunk.normalize(VInt(value)))
        expected = chunk.normalize(VInt(value))
        assert memory.load(chunk, ptr) == expected
