"""Properties of the program generator itself (the campaign's fuel).

The campaign engine's corpus cache and shrinker both rely on the
generator being a pure function of its parameters; the oracles rely on
every generated program being accepted by the whole toolchain.  These
tests pin those contracts down directly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analyzer import StackAnalyzer
from repro.driver import compile_c
from repro.testing import ProgramGenerator, generate_program

seeds = st.integers(0, 10_000)


class TestDeterminism:
    @settings(max_examples=50, deadline=None)
    @given(seeds)
    def test_same_seed_same_source(self, seed):
        """Byte-identical output for identical parameters — the corpus
        cache keys on the source hash, so any nondeterminism here would
        silently skip unverified programs."""
        assert generate_program(seed) == generate_program(seed)

    @settings(max_examples=20, deadline=None)
    @given(seeds, st.integers(1, 4), st.integers(1, 6), st.integers(0, 3),
           st.booleans())
    def test_parameters_are_part_of_the_key(self, seed, funcs, stmts, depth,
                                            recursion):
        kwargs = dict(max_functions=funcs, max_stmts=stmts, max_depth=depth,
                      recursion=recursion)
        assert generate_program(seed, **kwargs) == \
            generate_program(seed, **kwargs)

    def test_generator_instances_independent(self):
        """A generator's RNG state never leaks across instances."""
        first = ProgramGenerator(7).generate()
        _other = ProgramGenerator(8).generate()
        assert ProgramGenerator(7).generate() == first


class TestToolchainAcceptance:
    @settings(max_examples=30, deadline=None)
    @given(seeds)
    def test_generated_programs_compile(self, seed):
        """Every generated program parses, typechecks and compiles (the
        pipeline raises on any front-end rejection)."""
        compilation = compile_c(generate_program(seed))
        assert "main" in compilation.asm.functions

    @settings(max_examples=15, deadline=None)
    @given(seeds)
    def test_nonrecursive_programs_analyze(self, seed):
        """The automatic analyzer accepts every non-recursive generated
        program and bounds main."""
        compilation = compile_c(generate_program(seed))
        analysis = StackAnalyzer(compilation.clight).analyze()
        assert "main" in analysis.functions
        assert analysis.bound_bytes("main", compilation.metric) > 0
