/* The illustrative example of the paper's Figure 1: fill an array with a
 * pseudo-random increasing sequence and binary-search it.  ALEN and SEED
 * are the two integer parameters; override them with -D style macros
 * through the driver's `macros` argument. */

#ifndef ALEN
#define ALEN 1000
#endif
#ifndef SEED
#define SEED 17
#endif

typedef unsigned int u32;
u32 a[ALEN];
u32 seed = SEED;

u32 search(u32 elem, u32 beg, u32 end) {
    u32 mid = beg + (end - beg) / 2;
    if (end - beg <= 1) return beg;
    if (a[mid] > elem) end = mid; else beg = mid;
    return search(elem, beg, end);
}

u32 random() {
    seed = (seed * 1664525) + 1013904223;
    return seed;
}

void init() {
    u32 i, rnd, prev = 0;
    for (i = 0; i < ALEN; i++) {
        rnd = random();
        a[i] = prev + rnd % 17;
        prev = a[i];
    }
}

int main() {
    u32 idx, elem;
    init();
    elem = random() % (17 * ALEN);
    idx = search(elem, 0, ALEN);
    return a[idx] == elem;
}
