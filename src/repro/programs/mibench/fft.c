/* MiBench telecomm/fft (adapted).  The radix-2 decimation-in-time FFT of
 * fourier.c, with the float buffers as globals and the test harness
 * checking Parseval's identity.  Functions match Table 1: IsPowerOfTwo,
 * NumberOfBitsNeeded, ReverseBits, fft_float, plus main. */

#define NUM_SAMPLES 256
#define PI 3.141592653589793

typedef unsigned int u32;

double RealIn[NUM_SAMPLES];
double ImagIn[NUM_SAMPLES];
double RealOut[NUM_SAMPLES];
double ImagOut[NUM_SAMPLES];
u32 seed = 0xFF7;

u32 rnd() {
    seed = seed * 1664525 + 1013904223;
    return seed;
}

int IsPowerOfTwo(u32 x) {
    if (x < 2) return 0;
    if (x & (x - 1)) return 0;
    return 1;
}

u32 NumberOfBitsNeeded(u32 PowerOfTwo) {
    u32 i;
    for (i = 0; ; i++) {
        if (PowerOfTwo & (1 << i)) return i;
    }
}

u32 ReverseBits(u32 index, u32 NumBits) {
    u32 i, rev;
    for (i = rev = 0; i < NumBits; i++) {
        rev = (rev << 1) | (index & 1);
        index = index >> 1;
    }
    return rev;
}

void fft_float(u32 NumSamples, int InverseTransform,
               double *RealInP, double *ImagInP,
               double *RealOutP, double *ImagOutP) {
    u32 NumBits;
    u32 i, j, k, n;
    u32 BlockSize, BlockEnd;
    double angle_numerator = 2.0 * PI;
    double tr, ti;

    if (!IsPowerOfTwo(NumSamples)) {
        abort();
    }
    if (InverseTransform) {
        angle_numerator = -angle_numerator;
    }
    NumBits = NumberOfBitsNeeded(NumSamples);

    for (i = 0; i < NumSamples; i++) {
        j = ReverseBits(i, NumBits);
        RealOutP[j] = RealInP[i];
        ImagOutP[j] = ImagInP[i];
    }

    BlockEnd = 1;
    for (BlockSize = 2; BlockSize <= NumSamples; BlockSize = BlockSize << 1) {
        double delta_angle = angle_numerator / (double)BlockSize;
        double sm2 = sin(-2.0 * delta_angle);
        double sm1 = sin(-delta_angle);
        double cm2 = cos(-2.0 * delta_angle);
        double cm1 = cos(-delta_angle);
        double w = 2.0 * cm1;
        double ar0, ar1, ar2, ai0, ai1, ai2;

        for (i = 0; i < NumSamples; i = i + BlockSize) {
            ar2 = cm2;
            ar1 = cm1;
            ai2 = sm2;
            ai1 = sm1;
            for (j = i, n = 0; n < BlockEnd; j++, n++) {
                ar0 = w * ar1 - ar2;
                ar2 = ar1;
                ar1 = ar0;
                ai0 = w * ai1 - ai2;
                ai2 = ai1;
                ai1 = ai0;
                k = j + BlockEnd;
                tr = ar0 * RealOutP[k] - ai0 * ImagOutP[k];
                ti = ar0 * ImagOutP[k] + ai0 * RealOutP[k];
                RealOutP[k] = RealOutP[j] - tr;
                ImagOutP[k] = ImagOutP[j] - ti;
                RealOutP[j] = RealOutP[j] + tr;
                ImagOutP[j] = ImagOutP[j] + ti;
            }
        }
        BlockEnd = BlockSize;
    }

    if (InverseTransform) {
        double denom = (double)NumSamples;
        for (i = 0; i < NumSamples; i++) {
            RealOutP[i] = RealOutP[i] / denom;
            ImagOutP[i] = ImagOutP[i] / denom;
        }
    }
}

int main() {
    u32 i;
    double time_energy = 0.0;
    double freq_energy = 0.0;
    double ratio;

    for (i = 0; i < NUM_SAMPLES; i++) {
        RealIn[i] = (double)(rnd() % 1000) / 500.0 - 1.0;
        ImagIn[i] = 0.0;
        time_energy = time_energy + RealIn[i] * RealIn[i];
    }
    fft_float(NUM_SAMPLES, 0, RealIn, ImagIn, RealOut, ImagOut);
    for (i = 0; i < NUM_SAMPLES; i++) {
        freq_energy = freq_energy
            + RealOut[i] * RealOut[i] + ImagOut[i] * ImagOut[i];
    }
    /* Parseval: sum |X_k|^2 = N * sum |x_n|^2. */
    ratio = freq_energy / ((double)NUM_SAMPLES * time_energy);
    print_float(ratio);
    return fabs(ratio - 1.0) < 0.0001;
}
