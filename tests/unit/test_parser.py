"""Unit tests for the C parser."""

import pytest

from repro.c import ast
from repro.c import types as ct
from repro.c.parser import parse
from repro.errors import ParseError, UnsupportedFeatureError


def parse_expr_stmt(expr_text):
    program = parse(f"int main() {{ {expr_text}; }}")
    stmt = program.functions[0].body.body[0]
    assert isinstance(stmt, ast.SExpr)
    return stmt.expr


class TestDeclarations:
    def test_global_scalar(self):
        program = parse("int x = 5;")
        assert program.globals[0].name == "x"
        assert program.globals[0].ctype == ct.INT

    def test_global_array(self):
        program = parse("unsigned int a[10];")
        decl = program.globals[0]
        assert decl.ctype == ct.TArray(ct.UINT, 10)

    def test_multi_dimensional_array(self):
        program = parse("int m[3][4];")
        assert program.globals[0].ctype == ct.TArray(ct.TArray(ct.INT, 4), 3)

    def test_array_size_constant_expression(self):
        program = parse("#define N 4\nint a[N * 2 + 1];")
        assert program.globals[0].ctype.length == 9

    def test_pointer_declarator(self):
        program = parse("int *p;")
        assert program.globals[0].ctype == ct.TPointer(ct.INT)

    def test_multiple_globals_one_line(self):
        program = parse("int a, b = 2;")
        assert [g.name for g in program.globals] == ["a", "b"]

    def test_typedef(self):
        program = parse("typedef unsigned int u32; u32 x;")
        assert program.globals[0].ctype == ct.UINT

    def test_function_definition(self):
        program = parse("int f(int a, double b) { return a; }")
        function = program.functions[0]
        assert function.name == "f"
        assert [p.ctype for p in function.params] == [ct.INT, ct.DOUBLE]

    def test_void_params(self):
        program = parse("int f(void) { return 0; }")
        assert program.functions[0].params == []

    def test_forward_declaration_becomes_extern(self):
        program = parse("int f(int x);")
        assert program.externs[0].name == "f"

    def test_array_param_decays(self):
        program = parse("int f(int a[]) { return a[0]; }")
        assert program.functions[0].params[0].ctype == ct.TPointer(ct.INT)

    def test_struct_definition(self):
        program = parse("struct P { int x; double y; };")
        struct = program.structs["P"]
        assert struct.field("x").offset == 0
        assert struct.field("y").offset == 4  # double aligns to 4 on IA32

    def test_struct_self_reference_through_pointer(self):
        program = parse("struct N { int v; struct N *next; };")
        struct = program.structs["N"]
        assert struct.field("next").ctype == ct.TPointer(struct)
        assert struct.size == 8

    def test_struct_use_before_definition_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            parse("struct X y;")

    def test_struct_redefinition_rejected(self):
        with pytest.raises(ParseError):
            parse("struct A { int x; }; struct A { int y; };")

    def test_initializer_list(self):
        program = parse("int a[3] = {1, 2, 3};")
        init = program.globals[0].init
        assert isinstance(init, ast.InitList)
        assert len(init.items) == 3

    def test_trailing_comma_in_initializer(self):
        program = parse("int a[2] = {1, 2,};")
        assert len(program.globals[0].init.items) == 2


class TestUnsupportedFeatures:
    def test_goto_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            parse("int main() { goto end; }")

    def test_function_pointer_declarator_parses(self):
        # Function-pointer declarators joined the grammar with the value
        # analysis; the fp fragment is enforced by the type checker.
        program = parse("int main() { int (*f)(void); return 0; }")
        assert program.functions[0].name == "main"

    def test_variadic_function_pointer_rejected(self):
        with pytest.raises(ParseError):
            parse("int main() { int (*f)(int, ...); return 0; }")

    def test_union_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            parse("union U { int a; };")

    def test_long_long_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            parse("long long x;")

    def test_call_through_expression_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            parse("int a[2]; int main() { (a[0])(); }")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr_stmt("1 + 2 * 3")
        assert isinstance(expr, ast.Binary) and expr.op == "+"
        assert isinstance(expr.right, ast.Binary) and expr.right.op == "*"

    def test_precedence_shift_vs_add(self):
        expr = parse_expr_stmt("1 << 2 + 3")
        assert expr.op == "<<"
        assert expr.right.op == "+"

    def test_assignment_right_associative(self):
        program = parse("int main() { int a; int b; a = b = 1; }")
        stmt = program.functions[0].body.body[2]
        assert isinstance(stmt.expr, ast.Assign)
        assert isinstance(stmt.expr.value, ast.Assign)

    def test_conditional_expression(self):
        expr = parse_expr_stmt("1 ? 2 : 3")
        assert isinstance(expr, ast.Conditional)

    def test_logical_operators(self):
        expr = parse_expr_stmt("1 && 2 || 3")
        assert isinstance(expr, ast.Logical) and expr.op == "||"

    def test_unary_chain(self):
        expr = parse_expr_stmt("-~!1")
        assert expr.op == "-"
        assert expr.operand.op == "~"
        assert expr.operand.operand.op == "!"

    def test_postfix_chain(self):
        expr = parse_expr_stmt("a[1][2]")
        assert isinstance(expr, ast.Index)
        assert isinstance(expr.base, ast.Index)

    def test_member_access(self):
        expr = parse_expr_stmt("p->f.g")
        assert isinstance(expr, ast.Member) and not expr.through_pointer
        assert expr.base.through_pointer

    def test_cast(self):
        expr = parse_expr_stmt("(double)1")
        assert isinstance(expr, ast.Cast)
        assert expr.target_type == ct.DOUBLE

    def test_parenthesized_not_cast(self):
        expr = parse_expr_stmt("(1) + 2")
        assert isinstance(expr, ast.Binary)

    def test_sizeof_type(self):
        expr = parse_expr_stmt("sizeof(int)")
        assert isinstance(expr, ast.SizeOf)
        assert expr.arg_type == ct.INT

    def test_sizeof_expression(self):
        program = parse("int x; int main() { sizeof x; }")
        expr = program.functions[0].body.body[0].expr
        assert expr.arg_expr is not None

    def test_incdec_forms(self):
        pre = parse_expr_stmt("++x")
        post = parse_expr_stmt("x--")
        assert pre.is_prefix and not post.is_prefix

    def test_comma_expression(self):
        expr = parse_expr_stmt("1, 2")
        assert isinstance(expr, ast.Comma)

    def test_compound_assignments(self):
        for op in ("+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
                   "<<=", ">>="):
            expr = parse_expr_stmt(f"x {op} 1")
            assert isinstance(expr, ast.Assign) and expr.op == op


class TestStatements:
    def body(self, text):
        return parse(f"int main() {{ {text} }}").functions[0].body.body

    def test_if_else(self):
        (stmt,) = self.body("if (1) ; else ;")
        assert isinstance(stmt, ast.SIf) and stmt.otherwise is not None

    def test_dangling_else(self):
        (stmt,) = self.body("if (1) if (2) ; else ;")
        assert stmt.otherwise is None
        assert stmt.then.otherwise is not None

    def test_while(self):
        (stmt,) = self.body("while (1) break;")
        assert isinstance(stmt, ast.SWhile)

    def test_do_while(self):
        (stmt,) = self.body("do ; while (0);")
        assert isinstance(stmt, ast.SDoWhile)

    def test_for_full(self):
        (stmt,) = self.body("for (int i = 0; i < 3; i++) continue;")
        assert isinstance(stmt, ast.SFor)
        assert isinstance(stmt.init, ast.SDecl)

    def test_for_empty_parts(self):
        (stmt,) = self.body("for (;;) break;")
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_switch(self):
        (stmt,) = self.body(
            "switch (1) { case 1: break; case 2: case 3: break; default: ; }")
        assert isinstance(stmt, ast.SSwitch)
        values = [v for v, _stmts in stmt.cases]
        assert values == [1, 2, 3, None]

    def test_return_forms(self):
        stmts = self.body("return; return 1;")
        assert stmts[0].value is None
        assert stmts[1].value is not None

    def test_decl_group(self):
        (stmt,) = self.body("int a = 1, b = 2;")
        assert isinstance(stmt, ast.SDeclGroup)
        assert len(stmt.decls) == 2

    def test_nested_blocks(self):
        (stmt,) = self.body("{ int x = 1; { int y = 2; } }")
        assert isinstance(stmt, ast.SBlock)

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("int main() { return 1 }")

    def test_unbalanced_braces(self):
        with pytest.raises(ParseError):
            parse("int main() { if (1) { }")
