"""The derivation checker: executable validation of logic proofs.

Every rule application in a derivation tree is re-checked against the
side conditions of Fig. 4 (plus the loop/block/continue extensions).  Side
conditions are inequalities between bound expressions; they are discharged

* **exactly**, by max-plus normalization, whenever both sides are ground
  (everything the automatic analyzer emits), or
* **on a finite verification domain**, by exhaustive evaluation over the
  parameter ranges registered in the :class:`CheckerContext`, for the
  parametric assertions of manual recursive proofs.

The report distinguishes the two, so a caller can see exactly which parts
of a proof carry Coq-grade certainty and which rest on domain exhaustion
(the documented substitution for the paper's mechanized proofs).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from repro import obs
from repro.clight import ast as cl
from repro.errors import DerivationError
from repro.logic import derivation as dv
from repro.logic.assertions import FunContext, Post
from repro.logic.bexpr import (BExpr, ZERO, badd, bmetric, bound_equal,
                               bound_le, frame_diffs)


class CheckReport:
    """Statistics of a successful check."""

    def __init__(self) -> None:
        self.nodes = 0
        self.exact_conditions = 0
        self.sampled_conditions = 0

    @property
    def fully_exact(self) -> bool:
        return self.sampled_conditions == 0

    def __repr__(self) -> str:
        return (f"CheckReport(nodes={self.nodes}, "
                f"exact={self.exact_conditions}, "
                f"sampled={self.sampled_conditions})")


class CheckerContext:
    """Everything a check needs: Γ, externals, verification domains."""

    def __init__(self, gamma: FunContext,
                 externals: Optional[Iterable[str]] = None,
                 param_domains: Optional[Mapping[str, Iterable[int]]] = None,
                 metric_samples: Optional[Iterable[Mapping[str, int]]] = None,
                 bounds_backend: Optional[str] = None) -> None:
        self.gamma = gamma
        self.externals = set(externals or ())
        self.param_domains = dict(param_domains or {})
        self.metric_samples = list(metric_samples) if metric_samples else None
        # None defers to bexpr's module default ("fm" unless the CLI set a
        # --bounds-backend); "cross" makes every side condition of this
        # check — including Q:FRAME domination — run agree-or-fail against
        # the SMT backend.
        self.bounds_backend = bounds_backend


def check_derivation(derivation: dv.Derivation, ctx: CheckerContext
                     ) -> CheckReport:
    """Validate a derivation; raises :class:`DerivationError` on failure."""
    report = CheckReport()
    with obs.span("checker.derivation") as sp:
        _check(derivation, ctx, report)
        sp.set(nodes=report.nodes)
    obs.observe("checker.derivation_seconds", sp.dur)
    return report


def check_function_spec(function: cl.Function, derivation: dv.Derivation,
                        ctx: CheckerContext, report: Optional[CheckReport] = None
                        ) -> CheckReport:
    """Check that ``derivation`` proves Γ(f)'s spec for ``function``'s body.

    The derivation's conclusion must be ``{P_f} body {(Q_f, ⊤, Q_f, ⊤)}``
    with break/continue exits unreachable at function top level (their
    slots are unconstrained), and the return exit restoring ``Q_f``.
    """
    if report is None:
        report = CheckReport()
    spec = ctx.gamma[function.name]
    identity = {name: _param(name) for name in spec.params}
    pre, post = spec.instantiate(identity)
    conclusion = derivation.conclusion
    if conclusion.stmt is not function.body:
        raise DerivationError(
            f"{function.name}: derivation is not about the function body")
    _require_eq(conclusion.pre, pre, ctx, report,
                f"{function.name}: precondition differs from Γ spec")
    _require_eq(conclusion.post.ret, post, ctx, report,
                f"{function.name}: return postcondition differs from Γ spec")
    # Falling through the end of the body also ends the call.
    _require_eq(conclusion.post.skip, post, ctx, report,
                f"{function.name}: fall-through postcondition differs from Γ spec")
    with obs.span("checker.function", function=function.name) as sp:
        before = report.nodes
        _check(derivation, ctx, report)
        sp.set(nodes=report.nodes - before)
    obs.observe("checker.derivation_seconds", sp.dur)
    return report


def _param(name: str) -> BExpr:
    from repro.logic.bexpr import bparam

    return bparam(name)


# ---------------------------------------------------------------------------
# Node dispatch
# ---------------------------------------------------------------------------


def _check(node: dv.Derivation, ctx: CheckerContext, report: CheckReport) -> None:
    report.nodes += 1
    conclusion = node.conclusion
    stmt = conclusion.stmt

    if isinstance(node, dv.DSkip):
        _require_type(stmt, cl.SSkip, node)
        _require_eq(conclusion.pre, conclusion.post.skip, ctx, report,
                    "Q:SKIP: precondition must equal the skip postcondition")
        return
    if isinstance(node, dv.DSet):
        _require_type(stmt, cl.SSet, node)
        _require_eq(conclusion.pre, conclusion.post.skip, ctx, report,
                    "Q:SET: assignments cost no stack")
        return
    if isinstance(node, dv.DStore):
        _require_type(stmt, cl.SStore, node)
        _require_eq(conclusion.pre, conclusion.post.skip, ctx, report,
                    "Q:STORE: stores cost no stack")
        return
    if isinstance(node, dv.DBreak):
        _require_type(stmt, cl.SBreak, node)
        _require_eq(conclusion.pre, conclusion.post.brk, ctx, report,
                    "Q:BREAK: precondition must equal the break postcondition")
        return
    if isinstance(node, dv.DContinue):
        _require_type(stmt, cl.SContinue, node)
        _require_eq(conclusion.pre, conclusion.post.cont, ctx, report,
                    "Q:CONTINUE: precondition must equal the continue "
                    "postcondition")
        return
    if isinstance(node, dv.DReturn):
        _require_type(stmt, cl.SReturn, node)
        _require_eq(conclusion.pre, conclusion.post.ret, ctx, report,
                    "Q:RETURN: precondition must equal the return "
                    "postcondition")
        return
    if isinstance(node, dv.DSeq):
        _check_seq(node, ctx, report)
        return
    if isinstance(node, dv.DIf):
        _check_if(node, ctx, report)
        return
    if isinstance(node, dv.DLoop):
        _check_loop(node, ctx, report)
        return
    if isinstance(node, dv.DBlock):
        _check_block(node, ctx, report)
        return
    if isinstance(node, dv.DCall):
        _check_call(node, ctx, report)
        return
    if isinstance(node, dv.DExternal):
        _check_external(node, ctx, report)
        return
    if isinstance(node, dv.DFrame):
        _check_frame(node, ctx, report)
        return
    if isinstance(node, dv.DConseq):
        _check_conseq(node, ctx, report)
        return
    raise DerivationError(f"unknown derivation node {type(node).__name__}")


def _check_seq(node: dv.DSeq, ctx: CheckerContext, report: CheckReport) -> None:
    stmt = node.conclusion.stmt
    _require_type(stmt, cl.SSeq, node)
    assert isinstance(stmt, cl.SSeq)
    _require_same_stmt(node.first.conclusion.stmt, stmt.first, "Q:SEQ (first)")
    _require_same_stmt(node.second.conclusion.stmt, stmt.second, "Q:SEQ (second)")
    post = node.conclusion.post
    first_post = node.first.conclusion.post
    _require_eq(node.conclusion.pre, node.first.conclusion.pre, ctx, report,
                "Q:SEQ: precondition mismatch with S1")
    _require_eq(first_post.skip, node.second.conclusion.pre, ctx, report,
                "Q:SEQ: S1 fall-through must match S2 precondition")
    _require_eq(first_post.brk, post.brk, ctx, report,
                "Q:SEQ: S1 break exit must match the conclusion")
    _require_eq(first_post.ret, post.ret, ctx, report,
                "Q:SEQ: S1 return exit must match the conclusion")
    _require_eq(first_post.cont, post.cont, ctx, report,
                "Q:SEQ: S1 continue exit must match the conclusion")
    _require_post_eq(node.second.conclusion.post, post, ctx, report, "Q:SEQ: S2")
    _check(node.first, ctx, report)
    _check(node.second, ctx, report)


def _check_if(node: dv.DIf, ctx: CheckerContext, report: CheckReport) -> None:
    stmt = node.conclusion.stmt
    _require_type(stmt, cl.SIf, node)
    assert isinstance(stmt, cl.SIf)
    _require_same_stmt(node.then.conclusion.stmt, stmt.then, "Q:IF (then)")
    _require_same_stmt(node.otherwise.conclusion.stmt, stmt.otherwise,
                       "Q:IF (else)")
    for branch, label in ((node.then, "then"), (node.otherwise, "else")):
        _require_eq(node.conclusion.pre, branch.conclusion.pre, ctx, report,
                    f"Q:IF: {label}-branch precondition mismatch")
        _require_post_eq(branch.conclusion.post, node.conclusion.post, ctx,
                         report, f"Q:IF ({label})")
        _check(branch, ctx, report)


def _check_loop(node: dv.DLoop, ctx: CheckerContext, report: CheckReport) -> None:
    stmt = node.conclusion.stmt
    _require_type(stmt, cl.SLoop, node)
    assert isinstance(stmt, cl.SLoop)
    _require_same_stmt(node.body.conclusion.stmt, stmt.body, "Q:LOOP (body)")
    _require_same_stmt(node.post_stmt.conclusion.stmt, stmt.post,
                       "Q:LOOP (post)")
    invariant = node.conclusion.pre
    body = node.body.conclusion
    post_stmt = node.post_stmt.conclusion
    _require_eq(body.pre, invariant, ctx, report,
                "Q:LOOP: body precondition must be the loop invariant")
    _require_eq(body.post.skip, body.post.cont, ctx, report,
                "Q:LOOP: body fall-through and continue must agree "
                "(both enter the post statement)")
    _require_eq(post_stmt.pre, body.post.skip, ctx, report,
                "Q:LOOP: post-statement precondition mismatch")
    _require_eq(post_stmt.post.skip, invariant, ctx, report,
                "Q:LOOP: post statement must re-establish the invariant")
    _require_eq(post_stmt.post.brk, body.post.brk, ctx, report,
                "Q:LOOP: break exits of body and post must agree")
    _require_eq(post_stmt.post.ret, body.post.ret, ctx, report,
                "Q:LOOP: return exits of body and post must agree")
    _require_eq(node.conclusion.post.skip, body.post.brk, ctx, report,
                "Q:LOOP: the loop exits by break")
    _require_eq(node.conclusion.post.ret, body.post.ret, ctx, report,
                "Q:LOOP: return exit mismatch")
    _check(node.body, ctx, report)
    _check(node.post_stmt, ctx, report)


def _check_block(node: dv.DBlock, ctx: CheckerContext, report: CheckReport) -> None:
    stmt = node.conclusion.stmt
    _require_type(stmt, cl.SBlock, node)
    assert isinstance(stmt, cl.SBlock)
    _require_same_stmt(node.body.conclusion.stmt, stmt.body, "Q:BLOCK")
    body = node.body.conclusion
    _require_eq(node.conclusion.pre, body.pre, ctx, report,
                "Q:BLOCK: precondition mismatch")
    _require_eq(body.post.skip, node.conclusion.post.skip, ctx, report,
                "Q:BLOCK: fall-through mismatch")
    _require_eq(body.post.brk, node.conclusion.post.skip, ctx, report,
                "Q:BLOCK: break must exit to the block's fall-through")
    _require_eq(body.post.ret, node.conclusion.post.ret, ctx, report,
                "Q:BLOCK: return exit mismatch")
    _require_eq(body.post.cont, node.conclusion.post.cont, ctx, report,
                "Q:BLOCK: continue passes through the block")
    _check(node.body, ctx, report)


def _check_call(node: dv.DCall, ctx: CheckerContext, report: CheckReport) -> None:
    stmt = node.conclusion.stmt
    _require_type(stmt, cl.SCall, node)
    assert isinstance(stmt, cl.SCall)
    if stmt.callee != node.callee:
        raise DerivationError(
            f"Q:CALL: node names {node.callee!r} but statement calls "
            f"{stmt.callee!r}")
    if node.callee not in ctx.gamma:
        raise DerivationError(
            f"Q:CALL: no specification for {node.callee!r} in Γ")
    spec = ctx.gamma[node.callee]
    pre_inst, post_inst = spec.instantiate(node.spec_args)
    cost = bmetric(node.callee)
    _require_eq(node.conclusion.pre, badd(pre_inst, cost), ctx, report,
                f"Q:CALL {node.callee}: precondition must be "
                f"P_f(args) + M({node.callee})")
    _require_eq(node.conclusion.post.skip, badd(post_inst, cost), ctx, report,
                f"Q:CALL {node.callee}: postcondition must be "
                f"Q_f(args) + M({node.callee})")


def _check_external(node: dv.DExternal, ctx: CheckerContext,
                    report: CheckReport) -> None:
    stmt = node.conclusion.stmt
    _require_type(stmt, cl.SCall, node)
    assert isinstance(stmt, cl.SCall)
    if stmt.callee in ctx.gamma:
        raise DerivationError(
            f"Q:EXTERNAL: {stmt.callee!r} is an internal function; "
            "use Q:CALL")
    if ctx.externals and stmt.callee not in ctx.externals:
        raise DerivationError(
            f"Q:EXTERNAL: {stmt.callee!r} is not a declared external")
    _require_eq(node.conclusion.pre, node.conclusion.post.skip, ctx, report,
                "Q:EXTERNAL: external calls cost no stack")


def _check_frame(node: dv.DFrame, ctx: CheckerContext, report: CheckReport) -> None:
    _require_same_stmt(node.body.conclusion.stmt, node.conclusion.stmt,
                       "Q:FRAME")
    _require_le(ZERO, node.frame, ctx, report,
                "Q:FRAME: the frame constant must be non-negative")
    # A difference ``total - part`` inside the frame constant is only an
    # actual difference when ``part <= total`` (evaluation clamps at 0,
    # and the comparators rewrite ``part + (total - part)`` to ``total``
    # assuming exactly this).  Without the check a derivation could frame
    # a body needing T up to any smaller P — the induction step of a
    # recursive spec would pass vacuously on domain points below the
    # base-case guard.
    for diff in frame_diffs(node.frame):
        _require_le(diff.part, diff.total, ctx, report,
                    "Q:FRAME: the framed difference must dominate its "
                    "subtrahend over the verification domain")
    body = node.body.conclusion
    _require_eq(node.conclusion.pre, badd(body.pre, node.frame), ctx, report,
                "Q:FRAME: precondition must be P + c")
    for ours, theirs, label in zip(node.conclusion.post.parts(),
                                   body.post.parts(),
                                   ("skip", "break", "return", "continue")):
        _require_eq(ours, badd(theirs, node.frame), ctx, report,
                    f"Q:FRAME: {label} postcondition must be Q + c")
    _check(node.body, ctx, report)


def _check_conseq(node: dv.DConseq, ctx: CheckerContext, report: CheckReport) -> None:
    _require_same_stmt(node.body.conclusion.stmt, node.conclusion.stmt,
                       "Q:CONSEQ")
    body = node.body.conclusion
    _require_le(body.pre, node.conclusion.pre, ctx, report,
                "Q:CONSEQ: P must dominate P1")
    for ours, theirs, label in zip(node.conclusion.post.parts(),
                                   body.post.parts(),
                                   ("skip", "break", "return", "continue")):
        _require_le(ours, theirs, ctx, report,
                    f"Q:CONSEQ: derived {label} postcondition must "
                    "dominate the conclusion")
    _check(node.body, ctx, report)


# ---------------------------------------------------------------------------
# Side-condition plumbing
# ---------------------------------------------------------------------------


def _require_post_eq(actual: Post, expected: Post, ctx: CheckerContext,
                     report: CheckReport, where: str) -> None:
    for ours, theirs, label in zip(actual.parts(), expected.parts(),
                                   ("skip", "break", "return", "continue")):
        _require_eq(ours, theirs, ctx, report,
                    f"{where}: {label} postcondition mismatch")


def _require_type(stmt: cl.Stmt, expected: type, node: dv.Derivation) -> None:
    if not isinstance(stmt, expected):
        raise DerivationError(
            f"{node.rule}: expected a {expected.__name__}, "
            f"got {type(stmt).__name__}")


def _require_same_stmt(actual: cl.Stmt, expected: cl.Stmt, where: str) -> None:
    if actual is not expected:
        raise DerivationError(f"{where}: sub-derivation proves a different "
                              "statement than the conclusion mentions")


def _require_eq(a: BExpr, b: BExpr, ctx: CheckerContext, report: CheckReport,
                message: str) -> None:
    if a is b:
        report.exact_conditions += 1
        return
    result = bound_equal(a, b, param_domains=ctx.param_domains,
                         metric_samples=ctx.metric_samples,
                         backend=ctx.bounds_backend)
    _record(result, report)
    if not result.holds:
        raise DerivationError(f"{message}: {a!r} != {b!r}")


def _require_le(small: BExpr, large: BExpr, ctx: CheckerContext,
                report: CheckReport, message: str) -> None:
    result = bound_le(small, large, param_domains=ctx.param_domains,
                      metric_samples=ctx.metric_samples,
                      backend=ctx.bounds_backend)
    _record(result, report)
    if not result.holds:
        raise DerivationError(f"{message}: {small!r} > {large!r}")


def _record(result, report: CheckReport) -> None:
    if result.exact:
        report.exact_conditions += 1
    else:
        report.sampled_conditions += 1
