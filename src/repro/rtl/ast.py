"""RTL abstract syntax.

A function body is a graph ``node -> instruction``; every instruction
names its successor node(s).  Virtual registers are integers; the
function records which registers hold floats (the two register classes of
the IA32-like target).

Operations of :class:`Iop` are encoded as tuples:

* ``("const", n)`` — 32-bit integer constant;
* ``("constf", x)`` — float constant;
* ``("addrglobal", name)`` — address of a global;
* ``("addrstack", offset)`` — address of the merged frame block + offset;
* ``("move",)`` — register copy;
* ``("unop", op)`` / ``("binop", op)`` — operators of :mod:`repro.ops`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.clight.ast import GlobalVar
from repro.memory.chunks import Chunk

Reg = int
Node = int


class Instr:
    __slots__ = ()

    def successors(self) -> tuple[Node, ...]:
        raise NotImplementedError

    def uses(self) -> tuple[Reg, ...]:
        return ()

    def defs(self) -> tuple[Reg, ...]:
        return ()

    def with_successors(self, succs: Sequence[Node]) -> "Instr":
        raise NotImplementedError


class Inop(Instr):
    __slots__ = ("succ",)

    def __init__(self, succ: Node) -> None:
        self.succ = succ

    def successors(self) -> tuple[Node, ...]:
        return (self.succ,)

    def with_successors(self, succs):
        return Inop(succs[0])

    def __repr__(self) -> str:
        return f"nop -> {self.succ}"


class Iop(Instr):
    __slots__ = ("op", "args", "dest", "succ")

    def __init__(self, op: tuple, args: Sequence[Reg], dest: Reg,
                 succ: Node) -> None:
        self.op = op
        self.args = tuple(args)
        self.dest = dest
        self.succ = succ

    def successors(self) -> tuple[Node, ...]:
        return (self.succ,)

    def uses(self) -> tuple[Reg, ...]:
        return self.args

    def defs(self) -> tuple[Reg, ...]:
        return (self.dest,)

    def with_successors(self, succs):
        return Iop(self.op, self.args, self.dest, succs[0])

    def __repr__(self) -> str:
        args = ", ".join(f"r{a}" for a in self.args)
        return f"r{self.dest} = {self.op}({args}) -> {self.succ}"


class Iload(Instr):
    __slots__ = ("chunk", "addr", "dest", "succ")

    def __init__(self, chunk: Chunk, addr: Reg, dest: Reg, succ: Node) -> None:
        self.chunk = chunk
        self.addr = addr
        self.dest = dest
        self.succ = succ

    def successors(self) -> tuple[Node, ...]:
        return (self.succ,)

    def uses(self) -> tuple[Reg, ...]:
        return (self.addr,)

    def defs(self) -> tuple[Reg, ...]:
        return (self.dest,)

    def with_successors(self, succs):
        return Iload(self.chunk, self.addr, self.dest, succs[0])

    def __repr__(self) -> str:
        return f"r{self.dest} = load {self.chunk.value} [r{self.addr}] -> {self.succ}"


class Istore(Instr):
    __slots__ = ("chunk", "addr", "src", "succ")

    def __init__(self, chunk: Chunk, addr: Reg, src: Reg, succ: Node) -> None:
        self.chunk = chunk
        self.addr = addr
        self.src = src
        self.succ = succ

    def successors(self) -> tuple[Node, ...]:
        return (self.succ,)

    def uses(self) -> tuple[Reg, ...]:
        return (self.addr, self.src)

    def with_successors(self, succs):
        return Istore(self.chunk, self.addr, self.src, succs[0])

    def __repr__(self) -> str:
        return f"store {self.chunk.value} [r{self.addr}] = r{self.src} -> {self.succ}"


class Icall(Instr):
    __slots__ = ("dest", "callee", "args", "succ")

    def __init__(self, dest: Optional[Reg], callee: str,
                 args: Sequence[Reg], succ: Node) -> None:
        self.dest = dest
        self.callee = callee
        self.args = tuple(args)
        self.succ = succ

    def successors(self) -> tuple[Node, ...]:
        return (self.succ,)

    def uses(self) -> tuple[Reg, ...]:
        return self.args

    def defs(self) -> tuple[Reg, ...]:
        return (self.dest,) if self.dest is not None else ()

    def with_successors(self, succs):
        return Icall(self.dest, self.callee, self.args, succs[0])

    def __repr__(self) -> str:
        dest = f"r{self.dest} = " if self.dest is not None else ""
        args = ", ".join(f"r{a}" for a in self.args)
        return f"{dest}{self.callee}({args}) -> {self.succ}"


class Icond(Instr):
    """Branch on the truthiness of one (integer-class) register."""

    __slots__ = ("arg", "ifso", "ifnot")

    def __init__(self, arg: Reg, ifso: Node, ifnot: Node) -> None:
        self.arg = arg
        self.ifso = ifso
        self.ifnot = ifnot

    def successors(self) -> tuple[Node, ...]:
        return (self.ifso, self.ifnot)

    def uses(self) -> tuple[Reg, ...]:
        return (self.arg,)

    def with_successors(self, succs):
        return Icond(self.arg, succs[0], succs[1])

    def __repr__(self) -> str:
        return f"if r{self.arg} -> {self.ifso} else {self.ifnot}"


class Ireturn(Instr):
    __slots__ = ("arg",)

    def __init__(self, arg: Optional[Reg]) -> None:
        self.arg = arg

    def successors(self) -> tuple[Node, ...]:
        return ()

    def uses(self) -> tuple[Reg, ...]:
        return (self.arg,) if self.arg is not None else ()

    def with_successors(self, succs):
        return self

    def __repr__(self) -> str:
        return f"return r{self.arg}" if self.arg is not None else "return"


class RTLFunction:
    def __init__(self, name: str, params: Sequence[Reg],
                 float_regs: set[Reg], stacksize: int,
                 graph: dict[Node, Instr], entry: Node, next_reg: Reg,
                 returns_float: bool, param_is_float: Sequence[bool]) -> None:
        self.name = name
        self.params = list(params)
        self.float_regs = float_regs
        self.stacksize = stacksize
        self.graph = graph
        self.entry = entry
        self.next_reg = next_reg
        self.returns_float = returns_float
        self.param_is_float = list(param_is_float)

    def fresh_reg(self, is_float: bool = False) -> Reg:
        reg = self.next_reg
        self.next_reg += 1
        if is_float:
            self.float_regs.add(reg)
        return reg

    def instructions(self):
        return self.graph.items()

    def pretty(self) -> str:
        lines = [f"{self.name}(params={self.params}, stack={self.stacksize}, "
                 f"entry={self.entry})"]
        for node in sorted(self.graph, reverse=True):
            lines.append(f"  {node:4}: {self.graph[node]!r}")
        return "\n".join(lines)


class RTLProgram:
    def __init__(self, globals_: Sequence[GlobalVar],
                 functions: dict[str, RTLFunction],
                 externals: set[str], main: str = "main") -> None:
        self.globals = list(globals_)
        self.functions = dict(functions)
        self.externals = set(externals)
        self.main = main

    def is_internal(self, name: str) -> bool:
        return name in self.functions
