"""Test support: random well-typed C program generation.

Used by the property-based tests to exercise the whole pipeline
differentially — the generated programs are safe by construction (no
division by zero, masked array indices, bounded loops), so every level's
behavior must agree and the analyzer's bounds must dominate the observed
trace weights.
"""

from repro.testing.progen import ProgramGenerator, generate_program

__all__ = ["ProgramGenerator", "generate_program"]
