"""Integration: every packaged benchmark compiles, runs and refines.

This is the executable counterpart of the compiler's per-pass
quantitative-refinement theorems, checked end to end on the paper's
benchmark suite: identical call/ret traces from Clight to Mach, identical
I/O traces on ASMsz, weights bounded by the analyzer's result.
"""

import pytest

from repro.analyzer import StackAnalyzer
from repro.clight.semantics import run_program as run_clight
from repro.driver import compile_c
from repro.events.refinement import check_quantitative_refinement
from repro.events.trace import Converges, is_well_bracketed, weight_of_trace
from repro.mach.semantics import run_program as run_mach
from repro.measure import measure_compilation
from repro.programs.catalog import ALL_RUNNABLE, AUTO_ANALYZABLE, TABLE1
from repro.programs.loader import load_source
from repro.rtl.semantics import run_program as run_rtl

FUEL = 150_000_000


@pytest.fixture(scope="module")
def compilations():
    cache = {}
    for path in ALL_RUNNABLE:
        cache[path] = compile_c(load_source(path), filename=path)
    return cache


@pytest.mark.parametrize("path", ALL_RUNNABLE)
def test_converges_on_asm(compilations, path):
    run = measure_compilation(compilations[path], fuel=FUEL)
    assert run.converged, run.behavior
    assert run.measured_bytes > 0


@pytest.mark.parametrize("path", ALL_RUNNABLE)
def test_refinement_chain(compilations, path):
    compilation = compilations[path]
    b_clight = run_clight(compilation.clight, fuel=FUEL)
    assert isinstance(b_clight, Converges), b_clight
    assert is_well_bracketed(b_clight.trace)
    b_rtl = run_rtl(compilation.rtl, fuel=FUEL)
    b_mach = run_mach(compilation.mach, fuel=FUEL)
    b_asm, _machine = compilation.run(fuel=FUEL)
    check_quantitative_refinement(b_rtl, b_clight, compilation.metric)
    check_quantitative_refinement(b_mach, b_rtl, compilation.metric)
    check_quantitative_refinement(b_asm, b_mach)
    # Our passes preserve memory events exactly down to Mach.
    assert b_clight.trace == b_mach.trace


@pytest.mark.parametrize("path", AUTO_ANALYZABLE)
def test_analyzer_bounds_all_functions(compilations, path):
    compilation = compilations[path]
    analysis = StackAnalyzer(compilation.clight).analyze()
    assert set(analysis.functions) == set(compilation.clight.functions)
    report = analysis.check()
    assert report.fully_exact


@pytest.mark.parametrize("path", AUTO_ANALYZABLE)
def test_bounds_dominate_observed_weights(compilations, path):
    compilation = compilations[path]
    analysis = StackAnalyzer(compilation.clight).analyze()
    metric = compilation.metric
    b_mach = run_mach(compilation.mach, fuel=FUEL)
    observed = weight_of_trace(metric, b_mach.trace)
    assert observed <= analysis.bound_bytes("main", metric)


def test_table1_functions_all_present(compilations):
    for entry in TABLE1:
        program = compilations[entry.path].clight
        for fn in entry.functions:
            assert fn in program.functions, \
                f"{entry.path}: missing {fn}"


def test_recursive_programs_inferred_by_analyzer(compilations):
    """The ranking-function inference bounds every recursive benchmark
    with a checker-validated parametric spec (previously these were
    rejected outright)."""
    for path in ALL_RUNNABLE:
        if not path.startswith("recursive/"):
            continue
        result = StackAnalyzer(compilations[path].clight).analyze()
        assert result.recursive, f"{path}: no recursive function inferred"
        report = result.check()
        assert report.nodes > 0, f"{path}: empty derivation re-check"


def test_self_checks_pass(compilations):
    """Every benchmark's own self-check (return code 1) passes, except
    paper_example whose result depends on the random search outcome."""
    for path in ALL_RUNNABLE:
        if path == "paper_example.c":
            continue
        run = measure_compilation(compilations[path], fuel=FUEL)
        assert run.return_code == 1, f"{path}: self-check failed"
