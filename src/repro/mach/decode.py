"""Pre-decoded (threaded-code) execution engine for Mach.

Compiles each :class:`~repro.mach.ast.MachFunction` body into a flat
``code`` list of closures ``op(m) -> next_op | None`` (one entry per
instruction plus a fall-off-the-end return sentinel).  Labels, frame
slot offsets, register names and operation tuples are all resolved at
decode time; the machine-global register file becomes one flat list
with indices assigned program-wide (registers are machine-global in
Mach, so the index map spans every function).

Like RTL — and unlike Clight — Mach programs are rebuilt by each
lowering run and are cheap to decode, so no per-program cache is kept.

Observable equivalence with :class:`~repro.mach.semantics.MachMachine`:
one closure per legacy ``step()`` (labels included), same event order
with one shared ``CallEvent``/``ReturnEvent`` per function, identical
memory-allocation order, and byte-identical error messages.  Legacy
crash paths that escape ``DynamicError`` (unknown callees, labels and
frame slots raise ``KeyError``) are reproduced lazily at execution time,
never at decode time.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.clight.decode import (_DIRECT_INT_BINOPS, _FAST_INT_UNOPS, UNDEF,
                                 _VFALSE, _VTRUE)
from repro.errors import DynamicError, MemoryError_, UndefinedBehaviorError
from repro.events.stream import Consumer, StreamOutcome
from repro.events.trace import CallEvent, ReturnEvent
from repro.mach import ast as mach
from repro.memory import Chunk, Memory
from repro.memory.values import VFloat, VInt, VPtr
from repro.ops import (_FLOAT_BINOPS, _FLOAT_COMPARES, _INT_BINOPS,
                       _INT_COMPARES, eval_binop, eval_unop)
from repro.regalloc.locations import LFReg, LReg, LSlot, RESULT_INT
from repro.runtime import call_external


class DecodedMachFunction:
    """Per-function decode result (two-phase: created, then filled)."""

    __slots__ = ("name", "entry", "frame_size", "frame_tag", "no_frame_msg",
                 "slots", "call_event", "ret_event")

    def __init__(self, function: mach.MachFunction) -> None:
        self.name = function.name
        self.frame_size = function.frame.size
        self.slots = function.frame.slot_offsets
        self.frame_tag = f"frame {function.name}"
        self.no_frame_msg = f"{function.name}: frame access without a frame"
        self.call_event = CallEvent(function.name)
        self.ret_event = ReturnEvent(function.name)
        self.entry: Callable = None  # filled by decode_program


class DecodedMachProgram:
    __slots__ = ("functions", "main", "globals_index", "reg_index", "n_regs",
                 "result_slot")

    def __init__(self, program: mach.MachProgram) -> None:
        self.functions = {name: DecodedMachFunction(fn)
                          for name, fn in program.functions.items()}
        self.main = program.main
        self.globals_index = {var.name: index
                              for index, var in enumerate(program.globals)}
        # Machine-global register file: one index map for the program.
        self.reg_index: dict[str, int] = {}
        self.result_slot = self.reg_slot(RESULT_INT)
        self.n_regs = 0  # finalized by decode_program

    def reg_slot(self, name: str) -> int:
        slot = self.reg_index.get(name)
        if slot is None:
            slot = len(self.reg_index)
            self.reg_index[name] = slot
        return slot


def _decode_read(loc, frec: DecodedMachFunction, dprog: DecodedMachProgram):
    """Closure ``rd(m) -> Value`` for one location; returns ``(rd, slot)``
    where ``slot`` is the register index when the location is a plain
    register (letting callers inline the list access)."""
    if isinstance(loc, (LReg, LFReg)):
        slot = dprog.reg_slot(loc.name)

        def rd(m):
            return m.regs[slot]
        return rd, slot
    assert isinstance(loc, LSlot)
    chunk = Chunk.FLOAT64 if loc.is_float_class else Chunk.INT32
    offset = frec.slots.get(loc)
    if offset is None:
        return _missing_slot(loc, frec), None
    no_frame_msg = frec.no_frame_msg

    def rd(m):
        frame = m.frame
        if frame is None:
            raise DynamicError(no_frame_msg)
        return m.memory.load_at(chunk, frame.block, offset)
    return rd, None


def _missing_slot(loc, frec: DecodedMachFunction):
    # Legacy order: the frame is required first (DynamicError), then the
    # slot lookup raises KeyError, which escapes the behavior classifier.
    def rd(m):
        if m.frame is None:
            raise DynamicError(frec.no_frame_msg)
        raise KeyError(loc)
    return rd


def _decode_write(loc, frec: DecodedMachFunction, dprog: DecodedMachProgram):
    """Closure ``wr(m, value)``; also ``(wr, slot)`` like :func:`_decode_read`."""
    if isinstance(loc, (LReg, LFReg)):
        slot = dprog.reg_slot(loc.name)

        def wr(m, value):
            m.regs[slot] = value
        return wr, slot
    assert isinstance(loc, LSlot)
    chunk = Chunk.FLOAT64 if loc.is_float_class else Chunk.INT32
    offset = frec.slots.get(loc)
    if offset is None:
        missing = _missing_slot(loc, frec)

        def wr(m, value):
            missing(m)
        return wr, None
    no_frame_msg = frec.no_frame_msg

    def wr(m, value):
        frame = m.frame
        if frame is None:
            raise DynamicError(no_frame_msg)
        m.memory.store_at(chunk, frame.block, offset, value)
    return wr, None


def _decode_machop(instr: mach.MOp, index: int, code: list,
                   frec: DecodedMachFunction, dprog: DecodedMachProgram):
    op = instr.op
    kind = op[0]
    succ = index + 1
    wr, dslot = _decode_write(instr.dest, frec, dprog)
    if kind == "const":
        value = VInt(op[1])
        if dslot is not None:
            def oc(m):
                m.regs[dslot] = value
                return code[succ]
            return oc

        def oc(m):
            wr(m, value)
            return code[succ]
        return oc
    if kind == "constf":
        value = VFloat(op[1])
        if dslot is not None:
            def oc(m):
                m.regs[dslot] = value
                return code[succ]
            return oc

        def oc(m):
            wr(m, value)
            return code[succ]
        return oc
    if kind == "move":
        rd, sslot = _decode_read(instr.args[0], frec, dprog)
        if dslot is not None and sslot is not None:
            def oc(m):
                regs = m.regs
                regs[dslot] = regs[sslot]
                return code[succ]
            return oc

        def oc(m):
            wr(m, rd(m))
            return code[succ]
        return oc
    if kind == "addrglobal":
        gindex = dprog.globals_index.get(op[1])
        if gindex is None:
            name = op[1]

            def oc(m):
                raise UndefinedBehaviorError(f"unknown global {name!r}")
            return oc
        if dslot is not None:
            def oc(m):
                m.regs[dslot] = m.gptrs[gindex]
                return code[succ]
            return oc

        def oc(m):
            wr(m, m.gptrs[gindex])
            return code[succ]
        return oc
    if kind == "addrstack":
        offset = op[1]

        def oc(m):
            frame = m.frame
            if frame is None:
                raise DynamicError(frec.no_frame_msg)
            wr(m, VPtr(frame.block, offset))
            return code[succ]
        return oc
    if kind == "unop":
        uop = op[1]
        rd, sslot = _decode_read(instr.args[0], frec, dprog)
        fn = _FAST_INT_UNOPS.get(uop)
        if fn is not None and dslot is not None and sslot is not None:
            def oc(m):
                regs = m.regs
                value = regs[sslot]
                if type(value) is VInt:
                    regs[dslot] = VInt(fn(value.value))
                else:
                    regs[dslot] = eval_unop(uop, value)
                return code[succ]
            return oc
        if uop == "notbool" and dslot is not None and sslot is not None:
            def oc(m):
                regs = m.regs
                value = regs[sslot]
                if type(value) is VInt:
                    regs[dslot] = _VFALSE if value.value != 0 else _VTRUE
                else:
                    regs[dslot] = eval_unop(uop, value)
                return code[succ]
            return oc

        def oc(m):
            wr(m, eval_unop(uop, rd(m)))
            return code[succ]
        return oc
    if kind == "binop":
        bop = op[1]
        rd0, s0 = _decode_read(instr.args[0], frec, dprog)
        rd1, s1 = _decode_read(instr.args[1], frec, dprog)
        if dslot is not None and s0 is not None and s1 is not None:
            return _decode_reg_binop(bop, s0, s1, dslot, succ, code)
        value_of = _binop_value(bop)

        def oc(m):
            wr(m, value_of(rd0(m), rd1(m)))
            return code[succ]
        return oc
    detail = repr(op)

    def oc(m):
        raise DynamicError(f"unknown Mach operation {detail}")
    return oc


def _binop_value(bop):
    """``f(left, right) -> Value`` with the monomorphic paths inlined."""
    fn = _DIRECT_INT_BINOPS.get(bop) or _INT_BINOPS.get(bop)
    if fn is not None and bop not in ("add", "sub"):
        def value_of(left, right):
            if type(left) is VInt and type(right) is VInt:
                return VInt(fn(left.value, right.value))
            return eval_binop(bop, left, right)
        return value_of
    cmp_fn = _INT_COMPARES.get(bop)
    if cmp_fn is not None:
        def value_of(left, right):
            if type(left) is VInt and type(right) is VInt:
                return _VTRUE if cmp_fn(left.value, right.value) else _VFALSE
            return eval_binop(bop, left, right)
        return value_of
    return lambda left, right: eval_binop(bop, left, right)


def _decode_reg_binop(bop, s0, s1, dslot, succ, code):
    """All-register binop: the Mach analogue of the RTL specialization."""
    if bop == "add":
        def oc(m):
            regs = m.regs
            left = regs[s0]
            right = regs[s1]
            tl = type(left)
            if tl is VInt:
                if type(right) is VInt:
                    regs[dslot] = VInt(left.value + right.value)
                    return code[succ]
                if type(right) is VPtr:
                    regs[dslot] = right.add(left.value)
                    return code[succ]
            elif tl is VPtr and type(right) is VInt:
                regs[dslot] = left.add(right.value)
                return code[succ]
            regs[dslot] = eval_binop(bop, left, right)
            return code[succ]
        return oc
    if bop == "sub":
        def oc(m):
            regs = m.regs
            left = regs[s0]
            right = regs[s1]
            tl = type(left)
            if tl is VInt and type(right) is VInt:
                regs[dslot] = VInt(left.value - right.value)
                return code[succ]
            if tl is VPtr:
                if type(right) is VInt:
                    regs[dslot] = left.add(-right.value)
                    return code[succ]
                if type(right) is VPtr and left.block == right.block:
                    regs[dslot] = VInt(left.offset - right.offset)
                    return code[succ]
            regs[dslot] = eval_binop(bop, left, right)
            return code[succ]
        return oc
    fn = _DIRECT_INT_BINOPS.get(bop) or _INT_BINOPS.get(bop)
    if fn is not None:
        def oc(m):
            regs = m.regs
            left = regs[s0]
            right = regs[s1]
            if type(left) is VInt and type(right) is VInt:
                regs[dslot] = VInt(fn(left.value, right.value))
            else:
                regs[dslot] = eval_binop(bop, left, right)
            return code[succ]
        return oc
    fn = _INT_COMPARES.get(bop)
    if fn is not None:
        def oc(m):
            regs = m.regs
            left = regs[s0]
            right = regs[s1]
            if type(left) is VInt and type(right) is VInt:
                regs[dslot] = _VTRUE if fn(left.value, right.value) \
                    else _VFALSE
            elif (type(left) is VPtr and type(right) is VPtr
                    and left.block == right.block):
                regs[dslot] = _VTRUE if fn(left.offset, right.offset) \
                    else _VFALSE
            else:
                regs[dslot] = eval_binop(bop, left, right)
            return code[succ]
        return oc
    ffn = _FLOAT_BINOPS.get(bop)
    if ffn is not None:
        def oc(m):
            regs = m.regs
            left = regs[s0]
            right = regs[s1]
            if type(left) is VFloat and type(right) is VFloat:
                regs[dslot] = VFloat(ffn(left.value, right.value))
            else:
                regs[dslot] = eval_binop(bop, left, right)
            return code[succ]
        return oc
    ffn = _FLOAT_COMPARES.get(bop)
    if ffn is not None:
        def oc(m):
            regs = m.regs
            left = regs[s0]
            right = regs[s1]
            if type(left) is VFloat and type(right) is VFloat:
                regs[dslot] = _VTRUE if ffn(left.value, right.value) \
                    else _VFALSE
            else:
                regs[dslot] = eval_binop(bop, left, right)
            return code[succ]
        return oc

    def oc(m):
        regs = m.regs
        regs[dslot] = eval_binop(bop, regs[s0], regs[s1])
        return code[succ]
    return oc


def _do_return(m):
    """Pop the activation; the result is already in EAX/XMM0."""
    if m.frame is not None:
        m.memory.free(m.frame)
    event = m.frec.ret_event
    cstack = m.cstack
    if not cstack:
        m.done = True
        value = m.regs[m.result_slot]
        m.return_code = value.signed if isinstance(value, VInt) else 0
        m.sink(event)
        return None
    frec, frame, caller_frame, ret_op = cstack.pop()
    m.frec = frec
    m.frame = frame
    m.caller_frame = caller_frame
    m.sink(event)
    return ret_op


def _decode_function(function: mach.MachFunction, program: mach.MachProgram,
                     dprog: DecodedMachProgram) -> None:
    frec = dprog.functions[function.name]
    body = function.body
    n = len(body)
    code: list = [None] * (n + 1)
    code[n] = _do_return  # fell off the end of the body
    labels = function.labels
    for index, instr in enumerate(body):
        succ = index + 1
        if isinstance(instr, mach.MLabel):
            code[index] = (lambda succ: lambda m: code[succ])(succ)
        elif isinstance(instr, mach.MOp):
            code[index] = _decode_machop(instr, index, code, frec, dprog)
        elif isinstance(instr, mach.MLoad):
            code[index] = _decode_mload(instr, succ, code, frec, dprog)
        elif isinstance(instr, mach.MStore):
            code[index] = _decode_mstore(instr, succ, code, frec, dprog)
        elif isinstance(instr, mach.MStoreArg):
            code[index] = _decode_storearg(instr, succ, code, frec, dprog)
        elif isinstance(instr, mach.MGetParam):
            code[index] = _decode_getparam(instr, succ, code, frec, dprog)
        elif isinstance(instr, mach.MCall):
            code[index] = _decode_mcall(instr, succ, code, program, dprog)
        elif isinstance(instr, mach.MExtCall):
            code[index] = _decode_extcall(instr, succ, code, frec, dprog)
        elif isinstance(instr, mach.MGoto):
            target = labels.get(instr.label)
            if target is None:
                label = instr.label
                code[index] = (lambda label: _raise_key(label))(label)
            else:
                code[index] = (lambda target: lambda m: code[target])(target)
        elif isinstance(instr, mach.MCond):
            code[index] = _decode_mcond(instr, succ, code, labels, frec,
                                        dprog)
        elif isinstance(instr, mach.MReturn):
            code[index] = _do_return
        else:
            detail = repr(instr)

            def unknown(m, detail=detail):
                raise DynamicError(f"unknown Mach instruction {detail}")
            code[index] = unknown
    frec.entry = code[0]


def _raise_key(key):
    def op(m):
        raise KeyError(key)
    return op


def _decode_mload(instr, succ, code, frec, dprog):
    chunk = instr.chunk
    rd, aslot = _decode_read(instr.addr, frec, dprog)
    wr, dslot = _decode_write(instr.dest, frec, dprog)
    if aslot is not None and dslot is not None:
        def op(m):
            regs = m.regs
            ptr = regs[aslot]
            if type(ptr) is not VPtr:
                raise MemoryError_(f"load through non-pointer {ptr!r}")
            regs[dslot] = m.memory.load_at(chunk, ptr.block, ptr.offset)
            return code[succ]
        return op

    def op(m):
        ptr = rd(m)
        if type(ptr) is not VPtr:
            raise MemoryError_(f"load through non-pointer {ptr!r}")
        wr(m, m.memory.load_at(chunk, ptr.block, ptr.offset))
        return code[succ]
    return op


def _decode_mstore(instr, succ, code, frec, dprog):
    chunk = instr.chunk
    rd_addr, aslot = _decode_read(instr.addr, frec, dprog)
    rd_src, sslot = _decode_read(instr.src, frec, dprog)
    # chunk.normalize is the identity for word stores: skip the call.
    normalize = None if chunk is Chunk.INT32 else chunk.normalize

    def op(m):
        ptr = rd_addr(m)
        if type(ptr) is not VPtr:
            raise MemoryError_(f"store through non-pointer {ptr!r}")
        value = rd_src(m)
        if normalize is not None:
            value = normalize(value)
        m.memory.store_at(chunk, ptr.block, ptr.offset, value)
        return code[succ]
    return op


def _decode_storearg(instr, succ, code, frec, dprog):
    chunk = Chunk.FLOAT64 if instr.is_float else Chunk.INT32
    offset = instr.offset
    rd_src, _sslot = _decode_read(instr.src, frec, dprog)

    def op(m):
        frame = m.frame
        if frame is None:  # checked before the source is read, as legacy
            raise DynamicError(frec.no_frame_msg)
        m.memory.store_at(chunk, frame.block, offset, rd_src(m))
        return code[succ]
    return op


def _decode_getparam(instr, succ, code, frec, dprog):
    chunk = Chunk.FLOAT64 if instr.is_float else Chunk.INT32
    offset = instr.offset
    wr, dslot = _decode_write(instr.dest, frec, dprog)
    message = f"{frec.name}: parameter read without a caller"

    def op(m):
        caller_frame = m.caller_frame
        if caller_frame is None:
            raise DynamicError(message)
        value = m.memory.load_at(chunk, caller_frame.block,
                                 (caller_frame.offset + offset) & 0xFFFFFFFF)
        wr(m, value)
        return code[succ]
    return op


def _decode_mcall(instr, succ, code, program, dprog):
    callee = program.functions.get(instr.callee)
    if callee is None:
        # Legacy raises KeyError out of the behavior classifier.
        return _raise_key(instr.callee)
    rec = dprog.functions[instr.callee]
    has_frame = callee.frame.size > 0

    def op(m):
        m.cstack.append((m.frec, m.frame, m.caller_frame, code[succ]))
        caller_frame = m.frame
        m.frame = m.memory.alloc(rec.frame_size, tag=rec.frame_tag) \
            if has_frame else None
        m.caller_frame = caller_frame
        m.frec = rec
        m.sink(rec.call_event)
        return rec.entry
    return op


def _decode_extcall(instr, succ, code, frec, dprog):
    callee_name = instr.callee
    readers = tuple(_decode_read(arg, frec, dprog)[0] for arg in instr.args)
    if instr.dest is not None:
        wr, _dslot = _decode_write(instr.dest, frec, dprog)
    else:
        wr = None

    def op(m):
        args = [rd(m) for rd in readers]
        result, event = call_external(callee_name, args, alloc=m.alloc_heap,
                                      output=m.output)
        if wr is not None:
            wr(m, result)
        if event is not None:
            m.sink(event)
        return code[succ]
    return op


def _decode_mcond(instr, succ, code, labels, frec, dprog):
    rd, aslot = _decode_read(instr.arg, frec, dprog)
    target = labels.get(instr.label)
    if target is None:
        # Legacy only resolves the label when the branch is taken.
        label = instr.label

        def op(m):
            if rd(m).is_true():
                raise KeyError(label)
            return code[succ]
        return op
    if aslot is not None:
        def op(m):
            value = m.regs[aslot]
            if type(value) is VInt:
                return code[target] if value.value != 0 else code[succ]
            return code[target] if value.is_true() else code[succ]
        return op

    def op(m):
        return code[target] if rd(m).is_true() else code[succ]
    return op


def decode_program(program: mach.MachProgram) -> DecodedMachProgram:
    """Decode every function of ``program`` into threaded code.

    Not cached: Mach programs are rebuilt per lowering and decode is
    O(instructions).
    """
    dprog = DecodedMachProgram(program)
    for function in program.functions.values():
        _decode_function(function, program, dprog)
    dprog.n_regs = len(dprog.reg_index)
    return dprog


# ---------------------------------------------------------------------------
# The machine
# ---------------------------------------------------------------------------


class DecodedMachMachine:
    __slots__ = ("memory", "gptrs", "output", "sink", "regs", "frame",
                 "caller_frame", "frec", "cstack", "result_slot", "done",
                 "return_code")

    def __init__(self, program: mach.MachProgram, dprog: DecodedMachProgram,
                 sink: Consumer, output: Optional[list] = None) -> None:
        self.memory = Memory()
        self.gptrs = []
        for var in program.globals:
            ptr = self.memory.alloc(var.size, tag=f"global {var.name}")
            self.memory.store_bytes(ptr, var.image)
            self.gptrs.append(ptr)
        self.output = output
        self.sink = sink
        self.regs: list = [UNDEF] * dprog.n_regs
        self.frame: Optional[VPtr] = None
        self.caller_frame: Optional[VPtr] = None
        self.frec: Optional[DecodedMachFunction] = None
        self.cstack: list = []
        self.result_slot = dprog.result_slot
        self.done = False
        self.return_code: Optional[int] = None

    def alloc_heap(self, size: int) -> VPtr:
        return self.memory.alloc(size, tag="malloc")


class _Counting:
    __slots__ = ("sink", "count")

    def __init__(self, sink: Consumer) -> None:
        self.sink = sink
        self.count = 0

    def __call__(self, event) -> None:
        self.count += 1
        self.sink(event)


def run_streamed(program: mach.MachProgram, sink: Consumer,
                 fuel: int, output: Optional[list] = None) -> StreamOutcome:
    """Run ``program`` on the decoded engine, pushing events to ``sink``."""
    main = program.functions.get(program.main)
    if main is None:
        return StreamOutcome(StreamOutcome.GOES_WRONG,
                             reason="no main function")
    dprog = decode_program(program)
    counting = _Counting(sink)
    m = DecodedMachMachine(program, dprog, counting, output=output)
    i = 0
    code = True  # placeholder: never None before entry
    try:
        rec = dprog.functions[program.main]
        if rec.frame_size > 0:
            m.frame = m.memory.alloc(rec.frame_size, tag=rec.frame_tag)
        m.frec = rec
        m.sink(rec.call_event)
        code = rec.entry
        try:
            # The hot loop; see repro.clight.decode for the sentinel
            # trick (TypeError fires at exactly the iteration the legacy
            # loop would notice ``done``).
            for i in range(fuel):
                code = code(m)
        except TypeError:
            if code is not None:  # a genuine TypeError inside an op
                raise
        else:
            return StreamOutcome(StreamOutcome.DIVERGES,
                                 events=counting.count, steps=fuel)
    except DynamicError as exc:
        # Like RTL, the legacy Mach loop has no FuelExhaustedError
        # special case — it classifies as GoesWrong.
        return StreamOutcome(StreamOutcome.GOES_WRONG, reason=str(exc),
                             events=counting.count, steps=i)
    if not m.done:
        return StreamOutcome(StreamOutcome.DIVERGES,
                             events=counting.count, steps=i)
    return StreamOutcome(StreamOutcome.CONVERGES, return_code=m.return_code,
                         events=counting.count, steps=i)
