"""``auto_bound``: certified automatic stack-bound inference (paper §5).

For every Clight statement the analyzer returns a bound ``B`` and a
derivation concluding ``{B} S {(B, B, B, B)}`` — the statement needs at
most ``B`` bytes of stack for its calls and restores all of it on every
exit.  Composite statements are combined exactly as in the paper's Fig. 5:
sub-derivations are lifted to the common bound ``max(B1, B2)`` with
Q:FRAME (the frame constant being the difference ``max - Bi``), then
joined with the structural rule.

For call-free and ground-callee programs every side condition of the
emitted derivation is discharged *exactly* by the checker — the analyzer
never relies on sampled comparisons.  Calls to *parametric* callees
(recursive functions with inferred ranking-function specs, see
:mod:`repro.analyzer.recursion`) additionally need a *plan*: the spec
instantiation to use at that call site (the paper's auxiliary-state
choice).  With a plan the emitted ``Q:CALL`` node is still checked
exactly by construction; the sampled side conditions appear only at the
single framing step that closes a recursive function's induction.
"""

from __future__ import annotations

import time
from typing import Mapping, Optional

from repro import obs
from repro.analyzer.callgraph import build_call_graph
from repro.clight import ast as cl
from repro.errors import AnalysisError
from repro.events.metrics import StackMetric
from repro.logic import derivation as dv
from repro.logic.assertions import FunContext, FunSpec, Post
from repro.logic.bexpr import (BExpr, BFrameDiff, ZERO, badd, bmax, bmetric,
                               evaluate, param_names)
from repro.logic.checker import CheckerContext, CheckReport, \
    check_function_spec

# A plan maps ``id(SCall statement) -> spec_args`` for calls whose callee
# has a parametric spec; see repro.analyzer.recursion.build_call_plans.
Plans = Mapping[int, Mapping[str, BExpr]]


def auto_bound(stmt: cl.Stmt, gamma: FunContext,
               externals: Optional[set[str]] = None,
               plans: Optional[Plans] = None
               ) -> tuple[BExpr, dv.Derivation]:
    """Bound one statement; returns ``(B, derivation of {B} S {B,B,B,B})``."""
    externals = externals or set()

    if isinstance(stmt, cl.SSkip):
        return ZERO, dv.DSkip(_uniform_triple(ZERO, stmt))
    if isinstance(stmt, cl.SSet):
        return ZERO, dv.DSet(_uniform_triple(ZERO, stmt))
    if isinstance(stmt, cl.SStore):
        return ZERO, dv.DStore(_uniform_triple(ZERO, stmt))
    if isinstance(stmt, cl.SBreak):
        return ZERO, dv.DBreak(_uniform_triple(ZERO, stmt))
    if isinstance(stmt, cl.SContinue):
        return ZERO, dv.DContinue(_uniform_triple(ZERO, stmt))
    if isinstance(stmt, cl.SReturn):
        return ZERO, dv.DReturn(_uniform_triple(ZERO, stmt))
    if isinstance(stmt, cl.SCall):
        return _bound_call(stmt, gamma, externals, plans)
    if isinstance(stmt, cl.SSeq):
        bound1, deriv1 = auto_bound(stmt.first, gamma, externals, plans)
        bound2, deriv2 = auto_bound(stmt.second, gamma, externals, plans)
        total = bmax(bound1, bound2)
        node = dv.DSeq(_uniform_triple(total, stmt),
                       _lift(deriv1, total), _lift(deriv2, total))
        return total, node
    if isinstance(stmt, cl.SIf):
        bound1, deriv1 = auto_bound(stmt.then, gamma, externals, plans)
        bound2, deriv2 = auto_bound(stmt.otherwise, gamma, externals, plans)
        total = bmax(bound1, bound2)
        node = dv.DIf(_uniform_triple(total, stmt),
                      _lift(deriv1, total), _lift(deriv2, total))
        return total, node
    if isinstance(stmt, cl.SLoop):
        bound1, deriv1 = auto_bound(stmt.body, gamma, externals, plans)
        bound2, deriv2 = auto_bound(stmt.post, gamma, externals, plans)
        total = bmax(bound1, bound2)
        node = dv.DLoop(_uniform_triple(total, stmt),
                        _lift(deriv1, total), _lift(deriv2, total))
        return total, node
    if isinstance(stmt, cl.SBlock):
        bound, deriv = auto_bound(stmt.body, gamma, externals, plans)
        node = dv.DBlock(_uniform_triple(bound, stmt), deriv)
        return bound, node
    raise AnalysisError(f"statement not supported by the analyzer: "
                        f"{type(stmt).__name__}")


def _bound_call(stmt: cl.SCall, gamma: FunContext, externals: set[str],
                plans: Optional[Plans]) -> tuple[BExpr, dv.Derivation]:
    if stmt.callee in gamma:
        spec = gamma[stmt.callee]
        cost = bmetric(stmt.callee)
        if spec.params:
            spec_args = dict(plans.get(id(stmt), ())) if plans else {}
            if set(spec_args) != set(spec.params):
                raise AnalysisError(
                    f"{stmt.callee!r} has a parametric spec and no plan "
                    "instantiates it at this call site — the automatic "
                    "analyzer needs the value analysis to supply spec "
                    "arguments (or frame it manually)")
            pre_inst, post_inst = spec.instantiate(spec_args)
            total = badd(pre_inst, cost)
            post = badd(post_inst, cost)
            triple = dv.Triple(total, stmt, Post(post, post, post, post))
            return total, dv.DCall(triple, stmt.callee, spec_args)
        total = badd(spec.pre, cost)
        post = badd(spec.post, cost)
        triple = dv.Triple(total, stmt, Post(post, post, post, post))
        return total, dv.DCall(triple, stmt.callee, {})
    if stmt.callee in externals:
        return ZERO, dv.DExternal(_uniform_triple(ZERO, stmt), stmt.callee)
    raise AnalysisError(
        f"call to {stmt.callee!r}: no specification in Γ and not a known "
        "external (is the call graph processed in topological order?)")


def _uniform_triple(bound: BExpr, stmt: cl.Stmt) -> dv.Triple:
    return dv.Triple(bound, stmt, Post.uniform(bound))


def _lift(deriv: dv.Derivation, target: BExpr) -> dv.Derivation:
    """Frame a derivation up to ``target`` (Fig. 5's Q:FRAME step)."""
    current = deriv.conclusion.pre
    if repr(current) == repr(target):
        return deriv
    diff = BFrameDiff(target, current)
    lifted = dv.Triple(
        badd(current, diff), deriv.conclusion.stmt,
        deriv.conclusion.post.map(lambda q: badd(q, diff)))
    return dv.DFrame(lifted, diff, deriv)


# ---------------------------------------------------------------------------
# Whole-program analysis
# ---------------------------------------------------------------------------


class FunctionAnalysis:
    """Per-function result: spec, derivation, total symbolic bound."""

    __slots__ = ("name", "body_bound", "total_bound", "derivation")

    def __init__(self, name: str, body_bound: BExpr, total_bound: BExpr,
                 derivation: dv.Derivation) -> None:
        self.name = name
        self.body_bound = body_bound
        self.total_bound = total_bound
        self.derivation = derivation

    def __repr__(self) -> str:
        return f"FunctionAnalysis({self.name}: {self.total_bound!r})"


class AnalysisResult:
    """The output of a whole-program automatic analysis.

    ``param_domains`` holds the verification domains of every inferred
    parametric spec (empty for recursion-free programs), ``recipes`` the
    argument recipes callers use to instantiate parametric callees, and
    ``recursive`` the names whose bounds were inferred by the
    ranking-function analysis.
    """

    def __init__(self, program: cl.Program, gamma: FunContext,
                 functions: dict[str, FunctionAnalysis],
                 elapsed_seconds: float,
                 param_domains: Optional[dict] = None,
                 recipes: Optional[dict] = None,
                 recursive: Optional[list[str]] = None) -> None:
        self.program = program
        self.gamma = gamma
        self.functions = functions
        self.elapsed_seconds = elapsed_seconds
        self.param_domains = dict(param_domains or {})
        self.recipes = dict(recipes or {})
        self.recursive = list(recursive or [])

    def bound_expr(self, name: str) -> BExpr:
        """The symbolic bound for *calling* ``name`` (includes its frame)."""
        return self.functions[name].total_bound

    def bound_bytes(self, name: str, metric: StackMetric,
                    params: Optional[Mapping[str, int]] = None) -> int:
        """The concrete byte bound under a compiler-produced metric.

        Parametric bounds (recursive functions) additionally need concrete
        argument values in ``params``.
        """
        expr = self.bound_expr(name)
        free = sorted(param_names(expr))
        missing = [p for p in free if not params or p not in params]
        if missing:
            raise AnalysisError(
                f"bound of {name} is parametric over {missing}; supply "
                "concrete values via the params argument "
                f"(recipe: {self.recipes.get(name)})")
        value = evaluate(expr, metric.as_dict(), dict(params or {}))
        if value == float("inf"):
            raise AnalysisError(f"bound of {name} is unbounded")
        return int(value)

    def check(self, externals: Optional[set[str]] = None,
              bounds_backend: Optional[str] = None) -> CheckReport:
        """Re-validate every emitted derivation with the logic checker."""
        ctx = CheckerContext(self.gamma,
                             externals=externals or self.program.externals,
                             param_domains=self.param_domains or None,
                             bounds_backend=bounds_backend)
        report = CheckReport()
        with obs.span("analyze.check", functions=len(self.functions)) as sp:
            for name, analysis in self.functions.items():
                function = self.program.function(name)
                check_function_spec(function, analysis.derivation, ctx,
                                    report)
            sp.set(nodes=report.nodes, exact=report.exact_conditions)
        obs.observe("analyze.check_seconds", sp.dur)
        obs.add("checker.nodes", report.nodes)
        return report


class StackAnalyzer:
    """Analyze a whole Clight program, callees before callers.

    Functions are visited per strongly connected component in reverse
    topological order.  Singleton components go through plain
    ``auto_bound``; self-recursive functions go through the
    ranking-function inference of :mod:`repro.analyzer.recursion`; mutual
    recursion (a component of size > 1) is still outside the fragment and
    raises :class:`AnalysisError` with the component attached.
    """

    def __init__(self, program: cl.Program) -> None:
        self.program = program

    def analyze(self) -> AnalysisResult:
        from repro.analyzer.recursion import (build_call_plans,
                                              infer_recursive_spec)

        start = time.perf_counter()
        with obs.span("analyze.auto") as sp:
            graph = build_call_graph(self.program)
            gamma = FunContext()
            results: dict[str, FunctionAnalysis] = {}
            externals = set(self.program.externals)
            param_domains: dict[str, list[int]] = {}
            recipes: dict[str, dict] = {}
            recursive: list[str] = []
            for component in graph.sccs():
                if len(component) > 1:
                    raise AnalysisError(
                        "the automatic analyzer does not support mutual "
                        f"recursion: {' <-> '.join(sorted(component))}",
                        sccs=[sorted(component)])
                name = component[0]
                function = self.program.function(name)
                if name in graph.calls[name]:
                    inferred = infer_recursive_spec(
                        function, gamma, externals, recipes, param_domains)
                    gamma.add(inferred.spec)
                    recipes[name] = inferred.recipe
                    param_domains.update(inferred.param_domains)
                    recursive.append(name)
                    total = badd(bmetric(name), inferred.spec.pre)
                    results[name] = FunctionAnalysis(
                        name, inferred.spec.pre, total, inferred.derivation)
                    continue
                plans = build_call_plans(function, gamma, recipes)
                body_bound, derivation = auto_bound(function.body, gamma,
                                                    externals, plans)
                free = sorted(param_names(body_bound))
                if free:
                    # A non-recursive function whose bound depends on its
                    # arguments (it calls a parametric callee with values
                    # derived from its formals): publish a parametric spec
                    # and a pass-through recipe for *its* callers.
                    spec = FunSpec(name, free, body_bound, body_bound,
                                   description="auto_bound (parametric)")
                    recipe = {}
                    prefix = f"{name}$"
                    for param in free:
                        if not param.startswith(prefix):
                            raise AnalysisError(
                                f"{name}: bound depends on foreign "
                                f"parameter {param!r}")
                        formal = param[len(prefix):]
                        recipe[param] = ("formal",
                                         function.params.index(formal))
                        param_domains.setdefault(
                            param, _DEFAULT_PARAM_DOMAIN)
                    recipes[name] = recipe
                else:
                    spec = FunSpec.constant(name, body_bound,
                                            description="auto_bound")
                gamma.add(spec)
                total = badd(bmetric(name), body_bound)
                results[name] = FunctionAnalysis(name, body_bound, total,
                                                 derivation)
            sp.set(functions=len(results), recursive=len(recursive))
        obs.observe("analyze.auto_seconds", sp.dur)
        elapsed = time.perf_counter() - start
        return AnalysisResult(self.program, gamma, results, elapsed,
                              param_domains, recipes, recursive)


_DEFAULT_PARAM_DOMAIN = list(range(0, 601))
