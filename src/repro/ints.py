"""Machine-integer arithmetic for the 32-bit target.

Every integer value that flows through the compiler and the interpreters is
kept in its *unsigned 32-bit representation* (a Python int in
``[0, 2**32)``), mirroring CompCert's ``Int.int`` module where a single
bit-pattern type carries both signed and unsigned views.  Operations that
depend on signedness come in two flavours (e.g. :func:`div_s` and
:func:`div_u`), and conversions between the views are explicit.

Division and shift semantics follow C99 / x86:

* signed division truncates toward zero,
* signed modulo has the sign of the dividend,
* division or modulo by zero is undefined behavior,
* ``INT_MIN / -1`` overflows and is undefined behavior (x86 ``idiv`` faults),
* shift counts are taken modulo 32 (x86 semantics).
"""

from __future__ import annotations

from repro.errors import UndefinedBehaviorError

WORD_BITS = 32
WORD_SIZE = 4
MODULUS = 1 << WORD_BITS
MAX_UNSIGNED = MODULUS - 1
MAX_SIGNED = (MODULUS >> 1) - 1
MIN_SIGNED = -(MODULUS >> 1)


def wrap(value: int) -> int:
    """Reduce an arbitrary Python int to its unsigned 32-bit representation."""
    return value & MAX_UNSIGNED


def to_signed(value: int) -> int:
    """Interpret an unsigned 32-bit representation as a signed integer."""
    value = wrap(value)
    if value > MAX_SIGNED:
        return value - MODULUS
    return value


def to_unsigned(value: int) -> int:
    """Interpret any Python int (possibly negative) as unsigned 32-bit."""
    return wrap(value)


def wrap8(value: int) -> int:
    """Reduce to unsigned 8-bit (used by the i8 memory chunk)."""
    return value & 0xFF


def wrap16(value: int) -> int:
    """Reduce to unsigned 16-bit (used by the i16 memory chunk)."""
    return value & 0xFFFF


def sign_extend8(value: int) -> int:
    """Sign-extend an 8-bit pattern to the unsigned 32-bit representation."""
    value = wrap8(value)
    if value & 0x80:
        value -= 0x100
    return wrap(value)


def sign_extend16(value: int) -> int:
    """Sign-extend a 16-bit pattern to the unsigned 32-bit representation."""
    value = wrap16(value)
    if value & 0x8000:
        value -= 0x10000
    return wrap(value)


# ---------------------------------------------------------------------------
# Arithmetic
# ---------------------------------------------------------------------------


def add(a: int, b: int) -> int:
    return wrap(a + b)


def sub(a: int, b: int) -> int:
    return wrap(a - b)


def mul(a: int, b: int) -> int:
    return wrap(a * b)


def neg(a: int) -> int:
    return wrap(-a)


def div_s(a: int, b: int) -> int:
    """Signed division, truncating toward zero (C99, x86 ``idiv``)."""
    sa, sb = to_signed(a), to_signed(b)
    if sb == 0:
        raise UndefinedBehaviorError("signed division by zero")
    if sa == MIN_SIGNED and sb == -1:
        raise UndefinedBehaviorError("signed division overflow (INT_MIN / -1)")
    quotient = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        quotient = -quotient
    return wrap(quotient)


def mod_s(a: int, b: int) -> int:
    """Signed remainder with the sign of the dividend (C99, x86 ``idiv``)."""
    sa, sb = to_signed(a), to_signed(b)
    if sb == 0:
        raise UndefinedBehaviorError("signed modulo by zero")
    if sa == MIN_SIGNED and sb == -1:
        raise UndefinedBehaviorError("signed modulo overflow (INT_MIN % -1)")
    remainder = abs(sa) % abs(sb)
    if sa < 0:
        remainder = -remainder
    return wrap(remainder)


def div_u(a: int, b: int) -> int:
    """Unsigned division (x86 ``div``)."""
    a, b = wrap(a), wrap(b)
    if b == 0:
        raise UndefinedBehaviorError("unsigned division by zero")
    return a // b


def mod_u(a: int, b: int) -> int:
    """Unsigned remainder (x86 ``div``)."""
    a, b = wrap(a), wrap(b)
    if b == 0:
        raise UndefinedBehaviorError("unsigned modulo by zero")
    return a % b


# ---------------------------------------------------------------------------
# Bitwise operations
# ---------------------------------------------------------------------------


def and_(a: int, b: int) -> int:
    return wrap(a) & wrap(b)


def or_(a: int, b: int) -> int:
    return wrap(a) | wrap(b)


def xor(a: int, b: int) -> int:
    return wrap(a) ^ wrap(b)


def not_(a: int) -> int:
    return wrap(~a)


def shl(a: int, count: int) -> int:
    """Left shift; the count is taken modulo 32 as on x86."""
    return wrap(wrap(a) << (count & 31))


def shr_u(a: int, count: int) -> int:
    """Logical (unsigned) right shift."""
    return wrap(a) >> (count & 31)


def shr_s(a: int, count: int) -> int:
    """Arithmetic (signed) right shift."""
    return wrap(to_signed(a) >> (count & 31))


# ---------------------------------------------------------------------------
# Comparisons: return 1 or 0 in the unsigned representation
# ---------------------------------------------------------------------------


def _bool(b: bool) -> int:
    return 1 if b else 0


def eq(a: int, b: int) -> int:
    return _bool(wrap(a) == wrap(b))


def ne(a: int, b: int) -> int:
    return _bool(wrap(a) != wrap(b))


def lt_s(a: int, b: int) -> int:
    return _bool(to_signed(a) < to_signed(b))


def le_s(a: int, b: int) -> int:
    return _bool(to_signed(a) <= to_signed(b))


def gt_s(a: int, b: int) -> int:
    return _bool(to_signed(a) > to_signed(b))


def ge_s(a: int, b: int) -> int:
    return _bool(to_signed(a) >= to_signed(b))


def lt_u(a: int, b: int) -> int:
    return _bool(wrap(a) < wrap(b))


def le_u(a: int, b: int) -> int:
    return _bool(wrap(a) <= wrap(b))


def gt_u(a: int, b: int) -> int:
    return _bool(wrap(a) > wrap(b))


def ge_u(a: int, b: int) -> int:
    return _bool(wrap(a) >= wrap(b))


# ---------------------------------------------------------------------------
# Conversions with IEEE double
# ---------------------------------------------------------------------------


def of_float_signed(x: float) -> int:
    """Truncate a double toward zero into a signed 32-bit integer.

    Out-of-range conversions are undefined behavior in C; x86's
    ``cvttsd2si`` produces the indefinite value, which CompCert models as
    going wrong.  We raise.
    """
    if x != x:  # NaN
        raise UndefinedBehaviorError("float-to-int conversion of NaN")
    truncated = int(x)
    if truncated < MIN_SIGNED or truncated > MAX_SIGNED:
        raise UndefinedBehaviorError(f"float-to-int conversion out of range: {x!r}")
    return wrap(truncated)


def to_float_signed(a: int) -> float:
    """Convert the signed view of a 32-bit integer to a double (exact)."""
    return float(to_signed(a))


def to_float_unsigned(a: int) -> float:
    """Convert the unsigned view of a 32-bit integer to a double (exact)."""
    return float(wrap(a))
