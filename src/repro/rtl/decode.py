"""Pre-decoded (threaded-code) execution engine for RTL.

The legacy :class:`~repro.rtl.semantics.RTLMachine` dispatches every
step through ``graph.get(pc)`` plus an ``isinstance`` chain, keeps
registers in a per-activation dict, and re-interprets ``Iop`` operation
tuples on each execution.  This module compiles each
:class:`~repro.rtl.ast.RTLFunction` into a flat ``code`` list indexed by
node number whose entries are closures ``op(m) -> next_op | None``:
successors are decode-time constants, registers live in per-activation
lists indexed by register number, and operation tuples are resolved into
specialized closures (constants preallocated, operators inlined for the
monomorphic cases with the legacy ``eval_unop``/``eval_binop`` as the
error-for-error identical fallback).

The RTL optimization passes rewrite function graphs *in place*, so —
unlike the Clight decoder — decode results are NOT cached on the
program: :func:`run_streamed` decodes afresh, which is O(instructions)
and negligible next to any actual run.

Observable equivalence with the legacy machine: one closure call per
legacy ``step()``, events in the same order (one shared
``CallEvent``/``ReturnEvent`` instance per function; events compare
structurally), identical memory-allocation order, and byte-identical
error messages.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.clight.decode import (_DIRECT_INT_BINOPS, _FAST_INT_UNOPS, UNDEF,
                                 _VFALSE, _VINT0, _VTRUE)
from repro.errors import DynamicError, MemoryError_, UndefinedBehaviorError
from repro.events.stream import Consumer, StreamOutcome
from repro.events.trace import CallEvent, ReturnEvent
from repro.memory import Memory
from repro.memory.chunks import Chunk
from repro.memory.values import VFloat, VInt, VPtr
from repro.ops import (_FLOAT_BINOPS, _FLOAT_COMPARES, _INT_BINOPS,
                       _INT_COMPARES, eval_binop, eval_unop)
from repro.rtl import ast as rtl
from repro.runtime import call_external


class DecodedRTLFunction:
    """Per-function decode result (two-phase: created, then filled)."""

    __slots__ = ("name", "entry", "n_regs", "param_slots", "stacksize",
                 "frame_tag", "call_event", "ret_event")

    def __init__(self, function: rtl.RTLFunction) -> None:
        self.name = function.name
        self.param_slots = tuple(function.params)
        self.stacksize = function.stacksize
        self.frame_tag = f"frame {function.name}"
        self.call_event = CallEvent(function.name)
        self.ret_event = ReturnEvent(function.name)
        self.entry: Callable = None  # filled by decode_program
        self.n_regs = 0


class DecodedRTLProgram:
    __slots__ = ("functions", "main", "globals_index")

    def __init__(self, program: rtl.RTLProgram) -> None:
        self.functions = {name: DecodedRTLFunction(fn)
                          for name, fn in program.functions.items()}
        self.main = program.main
        self.globals_index = {var.name: index
                              for index, var in enumerate(program.globals)}


def _n_regs(function: rtl.RTLFunction) -> int:
    """Size of the register file: every register the body or the
    signature can touch gets a slot (optimized graphs may reference
    registers at or past ``next_reg`` only if malformed, but sizing from
    the instructions keeps the engine total either way)."""
    high = function.next_reg
    for reg in function.params:
        high = max(high, reg + 1)
    for _node, instr in function.instructions():
        for reg in instr.uses():
            high = max(high, reg + 1)
        for reg in instr.defs():
            if reg is not None:
                high = max(high, reg + 1)
    return high


def _decode_op(instr: rtl.Iop, frec: DecodedRTLFunction, code: list,
               dprog: DecodedRTLProgram):
    """Specialize one ``Iop``; mirrors the legacy ``_eval_op`` cases."""
    op = instr.op
    kind = op[0]
    dest = instr.dest
    succ = instr.succ
    args = instr.args
    if kind == "const":
        value = VInt(op[1])

        def oc(m):
            m.regs[dest] = value
            return code[succ]
        return oc
    if kind == "constf":
        value = VFloat(op[1])

        def oc(m):
            m.regs[dest] = value
            return code[succ]
        return oc
    if kind == "move":
        src = args[0]

        def oc(m):
            regs = m.regs
            regs[dest] = regs[src]
            return code[succ]
        return oc
    if kind == "addrglobal":
        index = dprog.globals_index.get(op[1])
        if index is None:
            name = op[1]

            def oc(m):
                raise UndefinedBehaviorError(f"unknown global {name!r}")
            return oc

        def oc(m):
            m.regs[dest] = m.gptrs[index]
            return code[succ]
        return oc
    if kind == "addrstack":
        offset = op[1]
        message = f"{frec.name}: addrstack without a frame"

        def oc(m):
            frame = m.frame
            if frame is None:
                raise UndefinedBehaviorError(message)
            m.regs[dest] = VPtr(frame.block, offset)
            return code[succ]
        return oc
    if kind == "unop":
        uop = op[1]
        src = args[0]
        fn = _FAST_INT_UNOPS.get(uop)
        if fn is not None:
            def oc(m):
                regs = m.regs
                value = regs[src]
                if type(value) is VInt:
                    regs[dest] = VInt(fn(value.value))
                else:
                    regs[dest] = eval_unop(uop, value)
                return code[succ]
            return oc
        if uop == "notbool":
            def oc(m):
                regs = m.regs
                value = regs[src]
                if type(value) is VInt:
                    regs[dest] = _VFALSE if value.value != 0 else _VTRUE
                else:
                    regs[dest] = eval_unop(uop, value)
                return code[succ]
            return oc

        def oc(m):
            regs = m.regs
            regs[dest] = eval_unop(uop, regs[src])
            return code[succ]
        return oc
    if kind == "binop":
        return _decode_binop(op[1], args[0], args[1], dest, succ, code)
    detail = repr(op)

    def oc(m):
        raise DynamicError(f"unknown RTL operation {detail}")
    return oc


def _decode_binop(bop, ls, rs, dest, succ, code):
    if bop == "add":
        def oc(m):
            regs = m.regs
            left = regs[ls]
            right = regs[rs]
            tl = type(left)
            if tl is VInt:
                if type(right) is VInt:
                    regs[dest] = VInt(left.value + right.value)
                    return code[succ]
                if type(right) is VPtr:
                    regs[dest] = right.add(left.value)
                    return code[succ]
            elif tl is VPtr and type(right) is VInt:
                regs[dest] = left.add(right.value)
                return code[succ]
            regs[dest] = eval_binop(bop, left, right)
            return code[succ]
        return oc
    if bop == "sub":
        def oc(m):
            regs = m.regs
            left = regs[ls]
            right = regs[rs]
            tl = type(left)
            if tl is VInt and type(right) is VInt:
                regs[dest] = VInt(left.value - right.value)
                return code[succ]
            if tl is VPtr:
                if type(right) is VInt:
                    regs[dest] = left.add(-right.value)
                    return code[succ]
                if type(right) is VPtr and left.block == right.block:
                    regs[dest] = VInt(left.offset - right.offset)
                    return code[succ]
            regs[dest] = eval_binop(bop, left, right)
            return code[succ]
        return oc
    fn = _DIRECT_INT_BINOPS.get(bop) or _INT_BINOPS.get(bop)
    if fn is not None:
        def oc(m):
            regs = m.regs
            left = regs[ls]
            right = regs[rs]
            if type(left) is VInt and type(right) is VInt:
                regs[dest] = VInt(fn(left.value, right.value))
            else:
                regs[dest] = eval_binop(bop, left, right)
            return code[succ]
        return oc
    fn = _INT_COMPARES.get(bop)
    if fn is not None:
        def oc(m):
            regs = m.regs
            left = regs[ls]
            right = regs[rs]
            if type(left) is VInt and type(right) is VInt:
                regs[dest] = _VTRUE if fn(left.value, right.value) \
                    else _VFALSE
            elif (type(left) is VPtr and type(right) is VPtr
                    and left.block == right.block):
                regs[dest] = _VTRUE if fn(left.offset, right.offset) \
                    else _VFALSE
            else:
                regs[dest] = eval_binop(bop, left, right)
            return code[succ]
        return oc
    ffn = _FLOAT_BINOPS.get(bop)
    if ffn is not None:
        def oc(m):
            regs = m.regs
            left = regs[ls]
            right = regs[rs]
            if type(left) is VFloat and type(right) is VFloat:
                regs[dest] = VFloat(ffn(left.value, right.value))
            else:
                regs[dest] = eval_binop(bop, left, right)
            return code[succ]
        return oc
    ffn = _FLOAT_COMPARES.get(bop)
    if ffn is not None:
        def oc(m):
            regs = m.regs
            left = regs[ls]
            right = regs[rs]
            if type(left) is VFloat and type(right) is VFloat:
                regs[dest] = _VTRUE if ffn(left.value, right.value) \
                    else _VFALSE
            else:
                regs[dest] = eval_binop(bop, left, right)
            return code[succ]
        return oc

    def oc(m):
        regs = m.regs
        regs[dest] = eval_binop(bop, regs[ls], regs[rs])
        return code[succ]
    return oc


def _do_return(m, value):
    """Pop the activation: free the frame, unwind, emit the ret event."""
    if m.frame is not None:
        m.memory.free(m.frame)
    event = m.frec.ret_event
    rstack = m.rstack
    if not rstack:
        m.done = True
        if value is None:
            value = _VINT0
        m.return_code = value.signed if isinstance(value, VInt) else 0
        m.sink(event)
        return None
    dest, frec, regs, frame, ret_op = rstack.pop()
    if dest is not None:
        regs[dest] = value if value is not None else UNDEF
    m.regs = regs
    m.frame = frame
    m.frec = frec
    m.sink(event)
    return ret_op


def _decode_call(instr: rtl.Icall, frec: DecodedRTLFunction, code: list,
                 program: rtl.RTLProgram, dprog: DecodedRTLProgram):
    arg_slots = instr.args
    dest = instr.dest
    succ = instr.succ
    if program.is_internal(instr.callee):
        callee = program.functions[instr.callee]
        rec = dprog.functions[instr.callee]
        if len(arg_slots) != len(callee.params):
            # Legacy order: args are read (never raising for registers),
            # pc is advanced, then _enter raises.
            message = f"{callee.name}: arity mismatch"

            def op(m):
                raise UndefinedBehaviorError(message)
            return op
        # ``rec`` may not be filled yet (mutual recursion), but the
        # callee's arity and frame size are in the source function.
        has_frame = callee.stacksize > 0
        if not has_frame and len(arg_slots) == 0:
            def op(m):
                m.rstack.append((dest, m.frec, m.regs, m.frame, code[succ]))
                m.regs = [UNDEF] * rec.n_regs
                m.frame = None
                m.frec = rec
                m.sink(rec.call_event)
                return rec.entry
            return op
        if not has_frame and len(arg_slots) == 1:
            a0, = arg_slots

            def op(m):
                regs = m.regs
                m.rstack.append((dest, m.frec, regs, m.frame, code[succ]))
                nregs = [UNDEF] * rec.n_regs
                nregs[rec.param_slots[0]] = regs[a0]
                m.regs = nregs
                m.frame = None
                m.frec = rec
                m.sink(rec.call_event)
                return rec.entry
            return op
        if not has_frame and len(arg_slots) == 2:
            a0, a1 = arg_slots

            def op(m):
                regs = m.regs
                m.rstack.append((dest, m.frec, regs, m.frame, code[succ]))
                nregs = [UNDEF] * rec.n_regs
                slots = rec.param_slots
                nregs[slots[0]] = regs[a0]
                nregs[slots[1]] = regs[a1]
                m.regs = nregs
                m.frame = None
                m.frec = rec
                m.sink(rec.call_event)
                return rec.entry
            return op

        def op(m):
            regs = m.regs
            m.rstack.append((dest, m.frec, regs, m.frame, code[succ]))
            nregs = [UNDEF] * rec.n_regs
            for slot, src in zip(rec.param_slots, arg_slots):
                nregs[slot] = regs[src]
            m.regs = nregs
            m.frame = m.memory.alloc(rec.stacksize, tag=rec.frame_tag) \
                if has_frame else None
            m.frec = rec
            m.sink(rec.call_event)
            return rec.entry
        return op

    callee_name = instr.callee

    def op(m):
        regs = m.regs
        args = [regs[src] for src in arg_slots]
        result, event = call_external(callee_name, args, alloc=m.alloc_heap,
                                      output=m.output)
        if dest is not None:
            regs[dest] = result
        if event is not None:
            m.sink(event)
        return code[succ]
    return op


def _decode_function(function: rtl.RTLFunction, program: rtl.RTLProgram,
                     dprog: DecodedRTLProgram) -> None:
    frec = dprog.functions[function.name]
    frec.n_regs = _n_regs(function)
    high = function.entry
    for node, instr in function.instructions():
        high = max(high, node)
        for succ in instr.successors():
            high = max(high, succ)
    code: list = [None] * (high + 1)

    def _missing(node: int):
        message = f"{function.name}: no instruction at node {node}"

        def op(m):
            raise DynamicError(message)
        return op

    for node in range(high + 1):
        code[node] = _missing(node)
    for node, instr in function.instructions():
        if isinstance(instr, rtl.Inop):
            succ = instr.succ
            code[node] = (lambda succ: lambda m: code[succ])(succ)
        elif isinstance(instr, rtl.Iop):
            code[node] = _decode_op(instr, frec, code, dprog)
        elif isinstance(instr, rtl.Iload):
            code[node] = _decode_memref(instr, code, load=True)
        elif isinstance(instr, rtl.Istore):
            code[node] = _decode_memref(instr, code, load=False)
        elif isinstance(instr, rtl.Icond):
            code[node] = _decode_cond(instr, code)
        elif isinstance(instr, rtl.Icall):
            code[node] = _decode_call(instr, frec, code, program, dprog)
        elif isinstance(instr, rtl.Ireturn):
            arg = instr.arg
            if arg is None:
                code[node] = lambda m: _do_return(m, None)
            else:
                code[node] = (lambda arg: lambda m:
                              _do_return(m, m.regs[arg]))(arg)
        else:
            detail = repr(instr)
            code[node] = (lambda detail: _raise_unknown(detail))(detail)
    frec.entry = code[function.entry]


def _raise_unknown(detail: str):
    def op(m):
        raise DynamicError(f"unknown instruction {detail}")
    return op


def _decode_memref(instr, code: list, load: bool):
    chunk = instr.chunk
    addr = instr.addr
    succ = instr.succ
    if load:
        dest = instr.dest

        def op(m):
            regs = m.regs
            ptr = regs[addr]
            if type(ptr) is not VPtr:
                raise MemoryError_(f"load through non-pointer {ptr!r}")
            regs[dest] = m.memory.load_at(chunk, ptr.block, ptr.offset)
            return code[succ]
        return op
    src = instr.src
    # chunk.normalize is the identity for word stores: skip the call.
    normalize = None if chunk is Chunk.INT32 else chunk.normalize

    def op(m):
        regs = m.regs
        ptr = regs[addr]
        if type(ptr) is not VPtr:
            raise MemoryError_(f"store through non-pointer {ptr!r}")
        value = regs[src]
        if normalize is not None:
            value = normalize(value)
        m.memory.store_at(chunk, ptr.block, ptr.offset, value)
        return code[succ]
    return op


def _decode_cond(instr: rtl.Icond, code: list):
    arg = instr.arg
    ifso = instr.ifso
    ifnot = instr.ifnot

    def op(m):
        value = m.regs[arg]
        if type(value) is VInt:
            return code[ifso] if value.value != 0 else code[ifnot]
        return code[ifso] if value.is_true() else code[ifnot]
    return op


def decode_program(program: rtl.RTLProgram) -> DecodedRTLProgram:
    """Decode every function of ``program`` into threaded code.

    Not cached: the RTL optimization passes mutate graphs in place, so a
    per-object cache could silently serve stale code.
    """
    dprog = DecodedRTLProgram(program)
    for function in program.functions.values():
        _decode_function(function, program, dprog)
    return dprog


# ---------------------------------------------------------------------------
# The machine
# ---------------------------------------------------------------------------


class DecodedRTLMachine:
    __slots__ = ("memory", "gptrs", "output", "sink", "regs", "frame",
                 "frec", "rstack", "done", "return_code")

    def __init__(self, program: rtl.RTLProgram, sink: Consumer,
                 output: Optional[list] = None) -> None:
        self.memory = Memory()
        self.gptrs = []
        for var in program.globals:
            ptr = self.memory.alloc(var.size, tag=f"global {var.name}")
            self.memory.store_bytes(ptr, var.image)
            self.gptrs.append(ptr)
        self.output = output
        self.sink = sink
        self.regs: list = []
        self.frame: Optional[VPtr] = None
        self.frec: Optional[DecodedRTLFunction] = None
        self.rstack: list = []
        self.done = False
        self.return_code: Optional[int] = None

    def alloc_heap(self, size: int) -> VPtr:
        return self.memory.alloc(size, tag="malloc")


class _Counting:
    __slots__ = ("sink", "count")

    def __init__(self, sink: Consumer) -> None:
        self.sink = sink
        self.count = 0

    def __call__(self, event) -> None:
        self.count += 1
        self.sink(event)


def run_streamed(program: rtl.RTLProgram, sink: Consumer,
                 fuel: int, output: Optional[list] = None) -> StreamOutcome:
    """Run ``program`` on the decoded engine, pushing events to ``sink``."""
    main = program.functions.get(program.main)
    if main is None:
        return StreamOutcome(StreamOutcome.GOES_WRONG,
                             reason="no main function")
    dprog = decode_program(program)
    counting = _Counting(sink)
    m = DecodedRTLMachine(program, counting, output=output)
    i = 0
    code = True  # placeholder: never None before entry
    try:
        if main.params:
            raise UndefinedBehaviorError(f"{main.name}: arity mismatch")
        rec = dprog.functions[program.main]
        m.regs = [UNDEF] * rec.n_regs
        if rec.stacksize > 0:
            m.frame = m.memory.alloc(rec.stacksize, tag=rec.frame_tag)
        m.frec = rec
        m.sink(rec.call_event)
        code = rec.entry
        try:
            # The hot loop.  When the program finishes, the previous op
            # returned None and calling it raises TypeError at exactly
            # the iteration the legacy loop would notice ``done``.
            for i in range(fuel):
                code = code(m)
        except TypeError:
            if code is not None:  # a genuine TypeError inside an op
                raise
        else:
            # Exactly like the legacy loop, running out of fuel reports
            # divergence even if the last step completed the program.
            return StreamOutcome(StreamOutcome.DIVERGES,
                                 events=counting.count, steps=fuel)
    except DynamicError as exc:
        # NB: unlike Clight, the legacy RTL loop has no special case for
        # FuelExhaustedError (a DynamicError subclass) — match it.
        return StreamOutcome(StreamOutcome.GOES_WRONG, reason=str(exc),
                             events=counting.count, steps=i)
    if not m.done:
        return StreamOutcome(StreamOutcome.DIVERGES,
                             events=counting.count, steps=i)
    return StreamOutcome(StreamOutcome.CONVERGES, return_code=m.return_code,
                         events=counting.count, steps=i)
