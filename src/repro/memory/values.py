"""Run-time values of the source and intermediate languages.

Mirrors CompCert's ``Val``: an integer, a double, a pointer into the block
memory, or the undefined value.  Values are immutable and hashable so they
can appear in event traces and in dataflow lattices.
"""

from __future__ import annotations

from repro import ints


class Value:
    """Abstract run-time value."""

    __slots__ = ()

    def is_true(self) -> bool:
        """C truth value; only defined values have one."""
        raise NotImplementedError


class VUndef(Value):
    """The undefined value (reading uninitialized storage)."""

    __slots__ = ()

    def is_true(self) -> bool:
        from repro.errors import UndefinedBehaviorError

        raise UndefinedBehaviorError("branch on undefined value")

    def __repr__(self) -> str:
        return "VUndef()"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VUndef)

    def __hash__(self) -> int:
        return hash("VUndef")


class VInt(Value):
    """A 32-bit machine integer, stored in unsigned representation."""

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        # ints.wrap, inlined: VInt construction is the single hottest
        # allocation in every interpreter.
        self.value = value & 0xFFFFFFFF

    def is_true(self) -> bool:
        return self.value != 0

    @property
    def signed(self) -> int:
        return ints.to_signed(self.value)

    @property
    def unsigned(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"VInt({self.signed})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VInt) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("VInt", self.value))


class VFloat(Value):
    """An IEEE binary64 value."""

    __slots__ = ("value",)

    def __init__(self, value: float) -> None:
        self.value = float(value)

    def is_true(self) -> bool:
        return self.value != 0.0

    def __repr__(self) -> str:
        return f"VFloat({self.value!r})"

    def __eq__(self, other: object) -> bool:
        # Bit-level equality: NaN == NaN, and +0.0 != -0.0 would be wrong
        # for trace comparison, so compare through struct packing.
        if not isinstance(other, VFloat):
            return False
        import struct

        return struct.pack("<d", self.value) == struct.pack("<d", other.value)

    def __hash__(self) -> int:
        import struct

        return hash(("VFloat", struct.pack("<d", self.value)))


class VPtr(Value):
    """A pointer ``(block, offset)`` into the block memory."""

    __slots__ = ("block", "offset")

    def __init__(self, block: int, offset: int) -> None:
        self.block = block
        self.offset = offset & 0xFFFFFFFF

    def is_true(self) -> bool:
        return True  # a valid pointer is never NULL; NULL is VInt(0)

    def add(self, delta: int) -> "VPtr":
        return VPtr(self.block, self.offset + delta)

    def __repr__(self) -> str:
        return f"VPtr(b{self.block}, {self.offset})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, VPtr)
            and other.block == self.block
            and other.offset == self.offset
        )

    def __hash__(self) -> int:
        return hash(("VPtr", self.block, self.offset))
