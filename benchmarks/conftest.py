"""Shared fixtures for the benchmark harness."""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "table: benchmark regenerates a paper table/figure")
