"""Quantitative CompCert, end to end: the user-facing driver.

``compile_c`` runs the full pipeline

    C → Clight → Cminor → RTL (constprop, optional CSE and tail calls,
      deadcode) → allocated RTL → Linear → Mach → ASMsz

and returns every intermediate program together with the compilation
artifacts the paper's Theorem 1 needs: the Mach frame-size map ``SF`` and
the cost metric ``M(f) = SF(f) + 4``.

``verify_stack_bounds`` then runs the automatic stack analyzer at the
Clight level, re-checks the emitted logic derivations, and instantiates
the symbolic bounds with the compiler's metric — producing the verified
per-function byte bounds of the paper's Table 1.

The pipeline is deliberately exposed as *composable stages* —

    compile_frontend → compile_clight → analyze_clight → check_analysis

— each a pure function of its inputs, so callers can insert caching at
any boundary.  ``verify_stack_bounds`` is the in-process composition;
``repro.serve.pipeline`` is the same composition with a
content-addressed result store between every stage (the daemon behind
``python -m repro serve``).
"""

from __future__ import annotations

from typing import Optional

from repro import obs
from repro.analyzer import AnalysisResult, StackAnalyzer
from repro.asm import asm_of_mach
from repro.asm import ast as asm_ast
from repro.asm.machine import AsmMachine, DEFAULT_FUEL, run_program as run_asm
from repro.c.parser import parse
from repro.c.typecheck import typecheck
from repro.clight import ast as cl
from repro.clight.from_c import clight_of_program
from repro.cminor import CminorProgram, cminor_of_clight
from repro.errors import AnalysisError
from repro.events.metrics import StackMetric
from repro.events.trace import Behavior
from repro.linear import LinearProgram, linear_of_rtl
from repro.logic.bexpr import BExpr, evaluate
from repro.mach import MachProgram, mach_of_linear
from repro.rtl import RTLProgram, rtl_of_cminor
from repro.rtl.constprop import constprop_program
from repro.rtl.cse import cse_program
from repro.rtl.deadcode import deadcode_program
from repro.rtl.tailcall import tailcall_program


class CompilerOptions:
    """Pass toggles (the ablation benchmark flips these)."""

    def __init__(self, constprop: bool = True, deadcode: bool = True,
                 cse: bool = False, tailcall: bool = False,
                 spill_everything: bool = False) -> None:
        self.constprop = constprop
        self.deadcode = deadcode
        # CSE is opt-in: with an all-caller-saved register file, the
        # longer live ranges it creates must be spilled across calls,
        # which *inflates* frames and hence the verified bounds (see the
        # ablation bench).  Fewer instructions, bigger frames — the
        # bounds-centric default favors tight frames.
        self.cse = cse
        # Also off by default, like in the paper's Quantitative CompCert:
        # the pass deletes call events, so plain trace equality across
        # levels no longer holds (the quantitative refinement still does).
        self.tailcall = tailcall
        self.spill_everything = spill_everything

    def key(self) -> tuple:
        """Structural identity, for caches and campaign reports.

        Derived from the instance dict rather than a hand-maintained
        tuple: a pass toggle added to ``__init__`` (and to the CLI's
        ``add_common``) is automatically part of the key, so a cache
        keyed on options can never serve a compilation from a different
        option set because someone forgot to extend this list
        (``tests/unit/test_compiler_options.py`` locks the audit in).
        """
        return tuple(sorted(vars(self).items()))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CompilerOptions):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        return (f"CompilerOptions(constprop={self.constprop}, "
                f"deadcode={self.deadcode}, cse={self.cse}, "
                f"tailcall={self.tailcall}, "
                f"spill_everything={self.spill_everything})")


class Compilation:
    """Everything the pipeline produced for one translation unit."""

    def __init__(self, clight: cl.Program, cminor: CminorProgram,
                 rtl: RTLProgram, linear: LinearProgram, mach: MachProgram,
                 asm: asm_ast.AsmProgram, options: CompilerOptions) -> None:
        self.clight = clight
        self.cminor = cminor
        self.rtl = rtl
        self.linear = linear
        self.mach = mach
        self.asm = asm
        self.options = options

    @property
    def frame_sizes(self) -> dict[str, int]:
        """The Mach ``SF`` map (Theorem 1, item 2)."""
        return self.mach.frame_sizes()

    @property
    def metric(self) -> StackMetric:
        """The compiler-produced cost metric ``M(f) = SF(f) + 4``."""
        return self.mach.cost_metric()

    def run(self, stack_bytes: int = 1 << 20,
            output: Optional[list] = None,
            fuel: int = DEFAULT_FUEL,
            decoded: Optional[bool] = None,
            engine: Optional[str] = None) -> tuple[Behavior, AsmMachine]:
        """Execute the compiled program on ASMsz.

        ``engine`` selects the execution tier
        (``"legacy"``/``"decoded"``/``"codegen"``); ``decoded`` is the
        older boolean selector — both default to the module defaults in
        :mod:`repro.asm.machine`.
        """
        return run_asm(self.asm, stack_bytes=stack_bytes, output=output,
                       fuel=fuel, decoded=decoded, engine=engine)


def compile_clight(clight: cl.Program,
                   options: Optional[CompilerOptions] = None) -> Compilation:
    """Run the backend pipeline from a Clight program."""
    options = options or CompilerOptions()
    with obs.span("compile.backend", options=repr(options.key())):
        with obs.span("compile.cminor"):
            cminor = cminor_of_clight(clight)
        with obs.span("compile.rtl"):
            rtl = rtl_of_cminor(cminor)
        if options.constprop:
            with obs.span("compile.rtl.constprop"):
                constprop_program(rtl)
        if options.cse:
            with obs.span("compile.rtl.cse"):
                cse_program(rtl)
        if options.tailcall:
            with obs.span("compile.rtl.tailcall"):
                tailcall_program(rtl)
        if options.deadcode:
            with obs.span("compile.rtl.deadcode"):
                deadcode_program(rtl)
        with obs.span("compile.linear"):
            linear = linear_of_rtl(
                rtl, spill_everything=options.spill_everything)
        with obs.span("compile.mach"):
            mach = mach_of_linear(linear)
        with obs.span("compile.asm"):
            asm = asm_of_mach(mach)
    return Compilation(clight, cminor, rtl, linear, mach, asm, options)


# The frontend (parse + typecheck + Clight generation) depends only on the
# source text, never on ``CompilerOptions``, and the backend never mutates
# the Clight program it is handed (``cminor_of_clight`` rebuilds every node
# it lowers).  So one frontend result can be shared across every ablation
# point of a seed.  The cache is deliberately tiny: campaigns compile the
# same seed under ~5 option sets back to back, then move on.
_FRONTEND_CACHE_SIZE = 8
_frontend_cache: dict[tuple, cl.Program] = {}
_frontend_cache_enabled = True


def configure_frontend_cache(enabled: bool) -> None:
    """Enable/disable frontend sharing (benchmarks flip this)."""
    global _frontend_cache_enabled
    _frontend_cache_enabled = enabled
    _frontend_cache.clear()


def compile_frontend(source: str, filename: str = "<string>",
                     macros: Optional[dict[str, str]] = None) -> cl.Program:
    """Parse, type-check and lower a C translation unit to Clight.

    The result is cached by ``(source, filename, macros)`` and must be
    treated as immutable by callers; pass it to :func:`compile_clight` any
    number of times with different options.
    """
    key = (source, filename,
           tuple(sorted(macros.items())) if macros else None)
    if _frontend_cache_enabled:
        cached = _frontend_cache.get(key)
        if cached is not None:
            obs.add("frontend.cache.hits")
            return cached
    with obs.span("compile.frontend", filename=filename) as sp:
        obs.add("frontend.cache.misses")
        with obs.span("compile.parse"):
            program = parse(source, filename, macros)
        with obs.span("compile.typecheck"):
            env = typecheck(program)
        with obs.span("compile.clight"):
            clight = clight_of_program(program, env)
        sp.set(functions=len(clight.functions))
    if _frontend_cache_enabled:
        if len(_frontend_cache) >= _FRONTEND_CACHE_SIZE:
            _frontend_cache.pop(next(iter(_frontend_cache)))
        _frontend_cache[key] = clight
    return clight


def compile_c(source: str, filename: str = "<string>",
              macros: Optional[dict[str, str]] = None,
              options: Optional[CompilerOptions] = None) -> Compilation:
    """Parse, type-check and compile a C translation unit."""
    return compile_clight(compile_frontend(source, filename, macros), options)


def analyze_clight(clight: cl.Program) -> AnalysisResult:
    """Pipeline stage: the certified automatic stack analyzer (paper §5).

    Depends only on the Clight program — never on ``CompilerOptions`` —
    so its result (symbolic bounds plus one logic derivation per
    function) is shared across every backend ablation of a source.
    """
    return StackAnalyzer(clight).analyze()


def check_analysis(analysis: AnalysisResult):
    """Pipeline stage: re-check every emitted derivation exactly.

    Raises :class:`AnalysisError` if any side condition was only
    sampled; returns the :class:`~repro.logic.checker.CheckReport`
    otherwise.  This is the trust root of the whole story — a cached or
    served bound is only as good as the derivation re-check behind it.
    """
    report = analysis.check()
    # Not an assert: the guarantee must survive ``python -O``.  Sampled
    # side conditions are legitimate exactly when the analysis carries
    # verification domains (inferred recursive specs check their
    # induction step per domain instance); a recursion-free analysis must
    # still discharge everything exactly.
    if not report.fully_exact and not analysis.param_domains:
        raise AnalysisError(
            "analyzer emitted a sampled side condition; the derivation "
            f"re-check is not exact ({report!r})")
    return report


class VerifiedBounds:
    """Verified stack bounds: symbolic (paper Table 2 style) and in bytes
    under the compiler's metric (paper Table 1 style)."""

    def __init__(self, compilation: Compilation,
                 analysis: AnalysisResult) -> None:
        self.compilation = compilation
        self.analysis = analysis
        self.metric = compilation.metric

    def symbolic(self, function: str) -> BExpr:
        return self.analysis.bound_expr(function)

    def bytes(self, function: str,
              params: Optional[dict[str, int]] = None) -> int:
        return self.analysis.bound_bytes(function, self.metric, params)

    def parametric(self) -> list[str]:
        """Functions whose bound depends on their arguments (recursion)."""
        from repro.logic.bexpr import param_names

        return sorted(name for name in self.analysis.functions
                      if param_names(self.analysis.bound_expr(name)))

    def all_bytes(self) -> dict[str, int]:
        """Concrete bounds for every non-parametric function."""
        parametric = set(self.parametric())
        return {name: self.bytes(name) for name in self.analysis.functions
                if name not in parametric}

    def stack_requirement(self) -> int:
        """``sz`` of Theorem 1: the verified bound for ``main``.

        Running the compiled program on ASMsz with a stack block of
        ``stack_requirement() + 4`` bytes (the +4 for main's pushed return
        address) cannot overflow.
        """
        main = self.compilation.asm.main
        if main not in self.analysis.functions:
            raise AnalysisError("program has no analyzed main function")
        return self.bytes(main)


def verify_stack_bounds(source: str, filename: str = "<string>",
                        macros: Optional[dict[str, str]] = None,
                        options: Optional[CompilerOptions] = None,
                        check_derivations: bool = True) -> VerifiedBounds:
    """The paper's end-to-end workflow in one call.

    Compiles ``source``, runs the certified automatic stack analyzer on
    the Clight program, optionally re-checks every emitted derivation in
    the quantitative logic, and returns the bounds instantiated with the
    compiler's cost metric.
    """
    compilation = compile_c(source, filename, macros, options)
    analysis = analyze_clight(compilation.clight)
    if check_derivations:
        check_analysis(analysis)
    return VerifiedBounds(compilation, analysis)
