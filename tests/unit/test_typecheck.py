"""Unit tests for the type checker."""

import pytest

from repro.c import ast
from repro.c import types as ct
from repro.c.parser import parse
from repro.c.typecheck import typecheck
from repro.errors import TypeError_, UnsupportedFeatureError


def check(source):
    program = parse(source)
    env = typecheck(program)
    return program, env


def main_of(source):
    program, _env = check(source)
    return program.function("main")


class TestGlobals:
    def test_environment_populated(self):
        _program, env = check("int g; double h; int main() { return 0; }")
        assert env.globals["g"] == ct.INT
        assert env.globals["h"] == ct.DOUBLE
        assert "main" in env.functions

    def test_duplicate_global_rejected(self):
        with pytest.raises(TypeError_):
            check("int g; int g;")

    def test_duplicate_function_rejected(self):
        with pytest.raises(TypeError_):
            check("int f() { return 0; } int f() { return 1; }")

    def test_void_variable_rejected(self):
        with pytest.raises(TypeError_):
            check("void v;")

    def test_builtins_predeclared(self):
        _program, env = check("int main() { print_int(1); return 0; }")
        assert "print_int" in env.externals

    def test_defined_function_shadows_builtin(self):
        _program, env = check("double sin(double x) { return x; } "
                              "int main() { return 0; }")
        assert "sin" in env.functions
        assert "sin" not in env.externals


class TestNameResolution:
    def test_undeclared_identifier(self):
        with pytest.raises(TypeError_):
            check("int main() { return nope; }")

    def test_block_scoping_with_shadowing(self):
        main = main_of(
            "int main() { int x = 1; { int x = 2; print_int(x); } return x; }")
        names = set(main.locals_types)
        assert len(names) == 2  # alpha-renamed apart

    def test_function_name_as_value_decays_to_pointer(self):
        # A function designator is a function-pointer value now; using it
        # where an int is expected is a conversion error, not an
        # unsupported feature.
        with pytest.raises(TypeError_):
            check("int f() { return 0; } int main() { return f; }")
        check("int f() { return 0; } "
              "int main() { int (*p)(void) = f; return p(); }")

    def test_external_function_as_value_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            check("int main() { void (*p)(int) = print_int; return 0; }")

    def test_duplicate_parameter_rejected(self):
        with pytest.raises(TypeError_):
            check("int f(int a, int a) { return a; }")


class TestConversions:
    def first_assignment_value(self, source):
        main = main_of(source)
        for stmt in main.body.body:
            if isinstance(stmt, ast.SDecl) and stmt.init is not None:
                return stmt.init.expr
        raise AssertionError("no declaration found")

    def test_int_to_double_cast_inserted(self):
        expr = self.first_assignment_value(
            "int main() { double d = 1; return 0; }")
        assert isinstance(expr, ast.Cast)
        assert expr.target_type == ct.DOUBLE

    def test_usual_arithmetic_unsigned_wins(self):
        program, _env = check(
            "unsigned int u; int main() { int s = 0; return (u + s) > 0; }")
        # the comparison operand type must have become unsigned: result
        # of u + s is UINT, and the relational converts both sides.
        main = program.function("main")
        ret = main.body.body[-1]
        assert ret.value.ty == ct.INT  # comparisons produce int

    def test_pointer_from_int_zero_ok(self):
        check("int main() { int *p = 0; return p == 0; }")

    def test_pointer_from_nonzero_int_rejected(self):
        with pytest.raises(TypeError_):
            check("int main() { int *p = 1; return 0; }")

    def test_incompatible_pointers_rejected(self):
        with pytest.raises(TypeError_):
            check("int main() { int x; double *p = &x; return 0; }")

    def test_void_pointer_compatible(self):
        check("int main() { int x; void *p = &x; int *q = p; return 0; }")

    def test_modulo_on_floats_rejected(self):
        with pytest.raises(TypeError_):
            check("int main() { double d = 1.0 % 2.0; return 0; }")

    def test_pointer_arithmetic_typed(self):
        check("int a[4]; int main() { int *p = a + 1; return *(p - 1); }")

    def test_pointer_difference_is_int(self):
        main = main_of("int a[4]; int main() { return &a[3] - &a[0]; }")
        assert main.body.body[0].value.ty == ct.INT


class TestLvalues:
    def test_assign_to_rvalue_rejected(self):
        with pytest.raises(TypeError_):
            check("int main() { 1 = 2; return 0; }")

    def test_assign_to_array_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            check("int a[2]; int b[2]; int main() { a = b; return 0; }")

    def test_address_of_literal_rejected(self):
        with pytest.raises(TypeError_):
            check("int main() { int *p = &1; return 0; }")

    def test_incdec_on_rvalue_rejected(self):
        with pytest.raises(TypeError_):
            check("int main() { (1 + 2)++; return 0; }")


class TestAddressable:
    def test_address_taken_scalar(self):
        main = main_of("int main() { int x = 0; int *p = &x; return *p; }")
        assert "x" in main.addressable

    def test_arrays_always_addressable(self):
        main = main_of("int main() { int a[4]; return 0; }")
        assert "a" in main.addressable

    def test_plain_scalars_not_addressable(self):
        main = main_of("int main() { int x = 1; return x; }")
        assert "x" not in main.addressable

    def test_address_taken_param_copied(self):
        program, _env = check(
            "void f(int *p) { *p = 1; } "
            "int g(int a) { f(&a); return a; } "
            "int main() { return g(1); }")
        g = program.function("g")
        assert "a" in g.param_copies


class TestCalls:
    def test_arity_mismatch(self):
        with pytest.raises(TypeError_):
            check("int f(int a) { return a; } int main() { return f(); }")

    def test_argument_conversion(self):
        check("double f(double d) { return d; } "
              "int main() { return f(1) > 0.0; }")

    def test_unknown_function(self):
        with pytest.raises(TypeError_):
            check("int main() { return mystery(); }")

    def test_call_to_forward_declared(self):
        check("int f(int x); int main() { return f(1); } "
              "int f(int x) { return x; }")


class TestStatementChecks:
    def test_break_outside_loop(self):
        with pytest.raises(TypeError_):
            check("int main() { break; return 0; }")

    def test_continue_outside_loop(self):
        with pytest.raises(TypeError_):
            check("int main() { continue; return 0; }")

    def test_break_in_switch_ok(self):
        check("int main() { switch (1) { case 1: break; } return 0; }")

    def test_return_value_in_void_function(self):
        with pytest.raises(TypeError_):
            check("void f() { return 1; } int main() { return 0; }")

    def test_return_missing_value(self):
        with pytest.raises(TypeError_):
            check("int f() { return; } int main() { return 0; }")

    def test_switch_on_double_rejected(self):
        with pytest.raises(TypeError_):
            check("int main() { switch (1.0) { case 1: ; } return 0; }")

    def test_duplicate_case_rejected(self):
        with pytest.raises(TypeError_):
            check("int main() { switch (1) { case 1: ; case 1: ; } return 0; }")


class TestStructs:
    def test_member_access(self):
        check("struct P { int x; int y; }; struct P p; "
              "int main() { p.x = 1; return p.x + p.y; }")

    def test_arrow_on_non_pointer_rejected(self):
        with pytest.raises(TypeError_):
            check("struct P { int x; }; struct P p; "
                  "int main() { return p->x; }")

    def test_unknown_field_rejected(self):
        with pytest.raises(TypeError_):
            check("struct P { int x; }; struct P p; "
                  "int main() { return p.z; }")

    def test_struct_return_rejected(self):
        with pytest.raises((TypeError_, UnsupportedFeatureError)):
            check("struct P { int x; }; "
                  "struct P f() { struct P p; return p; } "
                  "int main() { return 0; }")
