"""The benchmark program suite (paper §6).

C sources adapted to the supported subset, preserving the call structure,
loop structure and recursion patterns of the originals:

* ``paper_example.c`` — the illustrative program of the paper's Fig. 1;
* ``mibench/`` — dijkstra, bitcount, blowfish, md5, fft (MiBench [17]);
* ``certikos/`` — vmm.c and proc.c, simplified analogs of the CertiKOS
  virtual-memory and process-management modules analyzed in Table 1;
* ``compcert/`` — mandelbrot and nbody from the CompCert test suite;
* ``recursive/`` — the eight Table 2 functions (recid, bsearch, fib,
  qsort, filter_pos, sum, fact_sq, filter_find).

Adaptations are documented in DESIGN.md: large literal tables are
generated procedurally at program start, I/O uses the ``print_*``
builtins, and ``malloc`` is the arena builtin.
"""

from repro.programs.loader import load_source, program_path

__all__ = ["load_source", "program_path"]
