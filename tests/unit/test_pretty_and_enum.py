"""Unit tests for the C pretty-printer and enum support."""

import pytest

from repro.c.parser import parse
from repro.c.pretty import pretty_program
from repro.driver import compile_c
from repro.errors import ParseError


def run_source(source):
    behavior, _machine = compile_c(source).run()
    return behavior.return_code


class TestEnum:
    def test_sequential_values(self):
        assert run_source(
            "enum E { A, B, C }; int main() { return A * 100 + B * 10 + C; }"
        ) == 12

    def test_explicit_values_and_continuation(self):
        assert run_source(
            "enum E { A = 5, B, C = 20, D }; "
            "int main() { return A + B + C + D; }") == 5 + 6 + 20 + 21

    def test_enumerator_referencing_earlier(self):
        assert run_source(
            "enum E { A = 3, B = A * 2 }; int main() { return B; }") == 6

    def test_enum_as_type_is_int(self):
        assert run_source(
            "enum Color { RED, GREEN }; enum Color c = GREEN; "
            "int main() { return c + sizeof(c) * 0; }") == 1

    def test_enum_in_switch_case(self):
        assert run_source(
            "enum E { X = 7 }; int main() { "
            "switch (7) { case X: return 1; } return 0; }") == 1

    def test_trailing_comma(self):
        assert run_source("enum E { A, B, }; int main() { return B; }") == 1

    def test_duplicate_enumerator_rejected(self):
        with pytest.raises(ParseError):
            parse("enum E { A, A };")

    def test_anonymous_enum(self):
        assert run_source(
            "enum { K = 9 }; int main() { return K; }") == 9

    def test_enum_constant_in_array_size(self):
        assert run_source(
            "enum { N = 4 }; int a[N]; "
            "int main() { a[N - 1] = 5; return a[3]; }") == 5


class TestPrettyPrinter:
    def roundtrip(self, source):
        printed = pretty_program(parse(source))
        original, _m1 = compile_c(source).run()
        reprinted, _m2 = compile_c(printed).run()
        assert original == reprinted
        return printed

    def test_simple_function(self):
        printed = self.roundtrip("int main() { return 1 + 2 * 3; }")
        assert "int main" in printed

    def test_struct_definition_printed(self):
        printed = self.roundtrip(
            "struct P { int x; double y; }; struct P p; "
            "int main() { p.x = 1; return p.x; }")
        assert "struct P {" in printed

    def test_pointers_and_arrays(self):
        self.roundtrip(
            "int a[3]; int main() { int *p = &a[1]; *p = 4; return a[1]; }")

    def test_control_flow_forms(self):
        self.roundtrip(
            "int main() { int s = 0; "
            "for (int i = 0; i < 4; i++) { if (i == 2) continue; s += i; } "
            "while (s > 5) { s--; } do s++; while (0); "
            "switch (s) { case 5: return s; default: return 0; } }")

    def test_multi_declarator_for_init(self):
        self.roundtrip(
            "int main() { int s = 0; "
            "for (int i = 0, j = 4; i < j; i++) s += i; return s; }")

    def test_float_literals(self):
        self.roundtrip(
            "int main() { double d = 1.5e-3; return d > 0.0; }")

    def test_casts_and_sizeof(self):
        self.roundtrip(
            "int main() { double d = (double)3; "
            "return (int)d + (int)sizeof(int); }")

    def test_extern_declaration_printed(self):
        printed = self.roundtrip(
            "int helper(int x); int main() { return helper(2); } "
            "int helper(int x) { return x * 2; }")
        assert "int helper(int p0);" in printed

    def test_stable_normal_form(self):
        source = ("int g = 3; int f(int a, int b) { return a % b; } "
                  "int main() { return f(g, 2); }")
        once = pretty_program(parse(source))
        twice = pretty_program(parse(once))
        assert once == twice
