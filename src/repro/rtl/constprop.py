"""Constant propagation over RTL (one of CompCert's RTL optimizations).

A forward dataflow over the flat lattice ``UNDEF < const < NAC`` per
register.  Instructions whose operands are all constants are folded (the
folding evaluator is the *same* :mod:`repro.ops` the interpreters use, so
the transformation cannot disagree with the semantics); conditional
branches on constants become unconditional.

Folding is careful about undefined behavior: if evaluating an operation
on the inferred constants raises (division by zero, overflowing
conversion), the result is treated as NAC and the instruction is kept —
the program keeps its original (wrong) behavior instead of the optimizer
changing it.
"""

from __future__ import annotations

from repro import ops
from repro.errors import DynamicError
from repro.memory.values import VFloat, VInt, Value
from repro.rtl import ast as rtl
from repro.rtl.dataflow import solve_forward

NAC = "NAC"  # not-a-constant (lattice top)
# Absence from the fact dict means "undefined yet" (lattice bottom).

Fact = dict  # reg -> Value | NAC

#: Use the solver's fused in-place merge (one traversal per edge, no
#: per-join dict allocation).  The allocate-and-compare join below stays
#: as the differential oracle; flip this to cross-check fixpoints.
FUSED_MERGE = True


def _join(a: Fact, b: Fact) -> Fact:
    out = dict(a)
    for reg, value in b.items():
        if reg not in out:
            out[reg] = value
        elif out[reg] != value:
            out[reg] = NAC
    return out


def _equal(a: Fact, b: Fact) -> bool:
    return a == b


def _merge(old: Fact, new: Fact) -> bool:
    """Join ``new`` into ``old`` in place; True iff ``old`` changed.

    Same lattice as :func:`_join` + :func:`_equal`.  Facts propagate by
    reference, so the ``is`` test skips the ``Value.__eq__`` call for the
    overwhelmingly common unchanged register.
    """
    changed = False
    for reg, value in new.items():
        cur = old.get(reg, _MISSING)
        if cur is value or cur is NAC:
            continue
        if cur is _MISSING:
            old[reg] = value
            changed = True
        elif cur != value:
            old[reg] = NAC
            changed = True
    return changed


_MISSING = object()


def _transfer(_node: int, instr: rtl.Instr, fact: Fact) -> Fact:
    if isinstance(instr, rtl.Iop):
        out = dict(fact)
        out[instr.dest] = _eval(instr.op, [fact.get(r, NAC) for r in instr.args])
        return out
    if isinstance(instr, rtl.Iload):
        out = dict(fact)
        out[instr.dest] = NAC
        return out
    if isinstance(instr, rtl.Icall):
        out = dict(fact)
        if instr.dest is not None:
            out[instr.dest] = NAC
        return out
    return fact


def _eval(op: tuple, args: list):
    kind = op[0]
    if kind == "const":
        return VInt(op[1])
    if kind == "constf":
        return VFloat(op[1])
    if kind == "move":
        return args[0]
    if kind in ("addrglobal", "addrstack"):
        return NAC  # run-time addresses
    if any(not isinstance(a, Value) for a in args):
        return NAC
    try:
        if kind == "unop":
            return ops.eval_unop(op[1], args[0])
        if kind == "binop":
            return ops.eval_binop(op[1], args[0], args[1])
    except DynamicError:
        return NAC
    return NAC


def constprop(function: rtl.RTLFunction) -> int:
    """Rewrite ``function`` in place; returns the number of instructions
    changed (used by tests and the ablation bench)."""
    # Parameters have unknown run-time values: NAC at entry (leaving them
    # absent would make them lattice bottom and licence bogus folding).
    entry_fact = {param: NAC for param in function.params}
    if FUSED_MERGE:
        facts = solve_forward(function, entry_fact, _join, _transfer,
                              _equal, merge=_merge, copy=dict)
    else:
        facts = solve_forward(function, entry_fact, _join, _transfer, _equal)
    changed = 0
    for node, instr in list(function.graph.items()):
        fact = facts.get(node)
        if fact is None:
            continue  # unreachable
        new_instr = _rewrite(instr, fact)
        if new_instr is not None:
            function.graph[node] = new_instr
            changed += 1
    return changed


def _rewrite(instr: rtl.Instr, fact: Fact):
    if isinstance(instr, rtl.Iop):
        if instr.op[0] in ("const", "constf"):
            return None
        value = _eval(instr.op, [fact.get(r, NAC) for r in instr.args])
        if isinstance(value, VInt):
            return rtl.Iop(("const", value.value), [], instr.dest, instr.succ)
        if isinstance(value, VFloat):
            return rtl.Iop(("constf", value.value), [], instr.dest, instr.succ)
        return None
    if isinstance(instr, rtl.Icond):
        value = fact.get(instr.arg, NAC)
        if isinstance(value, VInt):
            return rtl.Inop(instr.ifso if value.value != 0 else instr.ifnot)
        if isinstance(value, VFloat):
            # Conditions are integer-class by construction, but stay safe.
            return None
        return None
    return None


def constprop_program(program: rtl.RTLProgram) -> int:
    return sum(constprop(f) for f in program.functions.values())
