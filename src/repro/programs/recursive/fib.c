/* Table 2: fib — the exponential-time Fibonacci recursion (from the
 * CompCert test suite).  The *stack* is only linear: the two recursive
 * calls never coexist, so the bound is max(n - 1, 1) * M(fib). */

#ifndef N
#define N 15
#endif

int fib(int n) {
    if (n < 2) return 1;
    return fib(n - 1) + fib(n - 2);
}

int main() {
    int r = fib(N);
    print_int(r);
    return r > 0;
}
