"""Tail-call recognition for self-recursive calls.

CompCert's tail-call pass is one of the two optimizations the paper's
Quantitative CompCert disables (§3.3): it *deletes* call/ret events, so
plain trace preservation breaks and the full quantitative-refinement
machinery (weights may only decrease, for every stack metric) is needed.
This module implements the self-recursive case as the paper's companion
TR sketches it: a call ``r = f(args)`` inside ``f`` itself whose result is
immediately returned becomes parameter reassignment plus a jump to the
entry — the recursion runs in constant stack.

The transformed trace is *pointwise dominated* by the original (strictly
fewer open calls at every prefix), which the differential tests check
with :func:`repro.events.refinement.dominates_for_all_metrics` — the
executable form of ``C(s) <=_Q s`` for an event-deleting pass.

Only exact self tail calls are transformed (``return f(...)`` where the
returned register is the call's destination, possibly through ``Inop``
hops).  General tail calls between different functions would need frame
resizing in the backend; like CompCert we keep the transformation at the
RTL level where it is a pure graph rewrite.
"""

from __future__ import annotations

from repro.rtl import ast as rtl


def _next_free_node(function: rtl.RTLFunction) -> int:
    return max(function.graph) + 1 if function.graph else 1


def _skip_nops(function: rtl.RTLFunction, node: int) -> int:
    seen = set()
    while True:
        instr = function.graph.get(node)
        if not isinstance(instr, rtl.Inop) or node in seen:
            return node
        seen.add(node)
        node = instr.succ


def _is_self_tail_call(function: rtl.RTLFunction,
                       instr: rtl.Instr) -> bool:
    """``r = f(args)`` followed (through nops and register moves of ``r``)
    only by ``return r``."""
    if not isinstance(instr, rtl.Icall):
        return False
    if instr.callee != function.name:
        return False
    tracked = instr.dest
    node = instr.succ
    for _ in range(64):  # the move chain is tiny; bound the walk
        node = _skip_nops(function, node)
        next_instr = function.graph.get(node)
        if isinstance(next_instr, rtl.Ireturn):
            return next_instr.arg == tracked
        if isinstance(next_instr, rtl.Iop) and next_instr.op[0] == "move" \
                and tracked is not None and next_instr.args == (tracked,):
            tracked = next_instr.dest
            node = next_instr.succ
            continue
        return False
    return False


def tailcall_function(function: rtl.RTLFunction) -> int:
    """Rewrite self tail calls in place; returns how many were converted."""
    if function.stacksize > 0:
        # Like CompCert, only functions with an empty stack block are
        # eligible: reusing a frame holding addressable locals would
        # alias what were distinct per-invocation locals.
        return 0
    converted = 0
    next_node = _next_free_node(function)
    # Keep the original entry reachable through a stable landing node so
    # every converted call jumps to the same place.
    landing: int | None = None

    for node, instr in list(function.graph.items()):
        if not _is_self_tail_call(function, instr):
            continue
        assert isinstance(instr, rtl.Icall)
        if len(instr.args) != len(function.params):
            continue  # ill-formed call: leave it to the semantics
        if landing is None:
            landing = next_node
            next_node += 1
            function.graph[landing] = rtl.Inop(function.entry)

        # Parallel assignment args -> params via fresh intermediates
        # (an argument may read a parameter that an earlier move would
        # already have clobbered).
        temps = []
        for arg in instr.args:
            temp = function.fresh_reg(arg in function.float_regs)
            temps.append(temp)
        chain_start = landing
        # Build backwards: temps -> params, then args -> temps.
        for param, temp in zip(reversed(function.params), reversed(temps)):
            move = rtl.Iop(("move",), [temp], param, chain_start)
            function.graph[next_node] = move
            chain_start = next_node
            next_node += 1
        for arg, temp in zip(reversed(instr.args), reversed(temps)):
            move = rtl.Iop(("move",), [arg], temp, chain_start)
            function.graph[next_node] = move
            chain_start = next_node
            next_node += 1
        function.graph[node] = rtl.Inop(chain_start)
        converted += 1
    return converted


def tailcall_program(program: rtl.RTLProgram) -> int:
    """Apply tail-call recognition to every function."""
    return sum(tailcall_function(f) for f in program.functions.values())
