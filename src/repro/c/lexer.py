"""Lexer for the C subset, with a minimal preprocessor.

The preprocessor handles exactly what the benchmark sources need:

* ``#define NAME tokens`` — object-like macros, substituted by token
  splicing (recursively, with a redefinition check);
* ``#include <...>`` / ``#include "..."`` — ignored (the runtime builtins
  are predeclared by the type checker);
* ``#ifdef/#ifndef/#else/#endif`` — evaluated against the macro table.

Function-like macros, ``##``, and ``#if`` expressions are rejected.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.errors import LexError, SourceLocation

KEYWORDS = {
    "void", "char", "short", "int", "long", "unsigned", "signed", "float",
    "double", "struct", "union", "enum", "typedef", "extern", "static",
    "const", "volatile", "if", "else", "while", "do", "for", "switch",
    "case", "default", "break", "continue", "return", "goto", "sizeof",
}

# Multi-character operators, longest first so maximal munch works.
OPERATORS = [
    "<<=", ">>=", "...",
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "->",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "(", ")", "[", "]", "{", "}", ";", ",", ".", "?", ":",
]


class Token:
    """kind is one of: 'id', 'keyword', 'int', 'float', 'char', 'op', 'eof'."""

    __slots__ = ("kind", "text", "value", "loc")

    def __init__(self, kind: str, text: str, value: object,
                 loc: SourceLocation) -> None:
        self.kind = kind
        self.text = text
        self.value = value
        self.loc = loc

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r})"

    def is_op(self, text: str) -> bool:
        return self.kind == "op" and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind == "keyword" and self.text == text


def tokenize(source: str, filename: str = "<string>",
             predefined_macros: Optional[dict[str, str]] = None) -> list[Token]:
    """Preprocess and tokenize ``source`` into a token list ending in EOF."""
    macros: dict[str, list[Token]] = {}
    if predefined_macros:
        for name, replacement in predefined_macros.items():
            macros[name] = _tokenize_line(str(replacement), filename, 0)
    out: list[Token] = []
    # Conditional-inclusion stack: each entry is True if the current
    # region is active.
    active_stack: list[bool] = []

    for line_no, line in enumerate(_splice_lines(source), start=1):
        stripped = line.lstrip()
        if stripped.startswith("#"):
            _preprocess_directive(stripped, filename, line_no, macros, active_stack)
            continue
        if active_stack and not all(active_stack):
            continue
        out.extend(_expand(_tokenize_line(line, filename, line_no), macros, filename, line_no))

    if active_stack:
        raise LexError("unterminated #if block", SourceLocation(filename, 0, 0))
    out.append(Token("eof", "", None, SourceLocation(filename, 0, 0)))
    return out


# ---------------------------------------------------------------------------
# Preprocessing
# ---------------------------------------------------------------------------


def _splice_lines(source: str) -> Iterator[str]:
    """Split into logical lines, joining backslash continuations and
    stripping comments (which may span lines)."""
    # Remove block comments first, preserving line structure.
    chars: list[str] = []
    i = 0
    n = len(source)
    while i < n:
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise LexError("unterminated block comment")
            # keep the newlines inside the comment so line numbers stay right
            chars.extend(ch for ch in source[i:end + 2] if ch == "\n")
            i = end + 2
        elif source.startswith("//", i):
            end = source.find("\n", i)
            i = n if end < 0 else end
        else:
            chars.append(source[i])
            i += 1
    text = "".join(chars)
    pending = ""
    for raw_line in text.split("\n"):
        if raw_line.endswith("\\"):
            pending += raw_line[:-1] + " "
            # emit an empty line to keep the count aligned
            yield ""
            continue
        yield pending + raw_line
        pending = ""
    if pending:
        yield pending


def _preprocess_directive(line: str, filename: str, line_no: int,
                          macros: dict[str, list[Token]],
                          active_stack: list[bool]) -> None:
    loc = SourceLocation(filename, line_no, 1)
    body = line[1:].strip()
    if not body:
        return
    directive, _, rest = body.partition(" ")
    rest = rest.strip()
    if directive in ("ifdef", "ifndef"):
        name = rest.split()[0] if rest else ""
        defined = name in macros
        active_stack.append(defined if directive == "ifdef" else not defined)
        return
    if directive == "else":
        if not active_stack:
            raise LexError("#else without #if", loc)
        active_stack[-1] = not active_stack[-1]
        return
    if directive == "endif":
        if not active_stack:
            raise LexError("#endif without #if", loc)
        active_stack.pop()
        return
    if active_stack and not all(active_stack):
        return
    if directive == "include":
        return  # runtime builtins are predeclared; headers are ignored
    if directive == "define":
        name, _, replacement = rest.partition(" ")
        if not name:
            raise LexError("#define without a name", loc)
        if "(" in name:
            raise LexError(
                f"function-like macro {name!r} is not supported", loc)
        macros[name] = _tokenize_line(replacement.strip(), filename, line_no)
        return
    if directive == "undef":
        macros.pop(rest.split()[0] if rest else "", None)
        return
    raise LexError(f"unsupported preprocessor directive #{directive}", loc)


def _expand(tokens: Sequence[Token], macros: dict[str, list[Token]],
            filename: str, line_no: int,
            expanding: frozenset[str] = frozenset()) -> list[Token]:
    out: list[Token] = []
    for token in tokens:
        if token.kind == "id" and token.text in macros and token.text not in expanding:
            replacement = macros[token.text]
            out.extend(_expand(replacement, macros, filename, line_no,
                               expanding | {token.text}))
        else:
            out.append(token)
    return out


# ---------------------------------------------------------------------------
# Scanning one logical line
# ---------------------------------------------------------------------------


def _tokenize_line(line: str, filename: str, line_no: int) -> list[Token]:
    tokens: list[Token] = []
    i = 0
    n = len(line)
    while i < n:
        ch = line[i]
        if ch in " \t\r\f\v":
            i += 1
            continue
        loc = SourceLocation(filename, line_no, i + 1)
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (line[i].isalnum() or line[i] == "_"):
                i += 1
            text = line[start:i]
            kind = "keyword" if text in KEYWORDS else "id"
            tokens.append(Token(kind, text, text, loc))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and line[i + 1].isdigit()):
            token, i = _scan_number(line, i, loc)
            tokens.append(token)
            continue
        if ch == "'":
            token, i = _scan_char(line, i, loc)
            tokens.append(token)
            continue
        if ch == '"':
            raise LexError("string literals are not supported", loc)
        for op in OPERATORS:
            if line.startswith(op, i):
                tokens.append(Token("op", op, op, loc))
                i += len(op)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", loc)
    return tokens


def _scan_number(line: str, i: int, loc: SourceLocation) -> tuple[Token, int]:
    n = len(line)
    start = i
    is_float = False
    if line.startswith(("0x", "0X"), i):
        i += 2
        while i < n and (line[i] in "0123456789abcdefABCDEF"):
            i += 1
        text = line[start:i]
        value = int(text, 16)
    else:
        while i < n and line[i].isdigit():
            i += 1
        if i < n and line[i] == ".":
            is_float = True
            i += 1
            while i < n and line[i].isdigit():
                i += 1
        if i < n and line[i] in "eE":
            peek = i + 1
            if peek < n and line[peek] in "+-":
                peek += 1
            if peek < n and line[peek].isdigit():
                is_float = True
                i = peek
                while i < n and line[i].isdigit():
                    i += 1
        text = line[start:i]
        if is_float:
            value = float(text)
        else:
            value = int(text, 8) if text.startswith("0") and len(text) > 1 else int(text)

    unsigned_suffix = False
    while i < n and line[i] in "uUlLfF":
        if line[i] in "uU":
            unsigned_suffix = True
        if line[i] in "fF" and not is_float:
            break  # hex digit ranges already consumed f/F above
        i += 1

    if is_float:
        return Token("float", line[start:i], float(value), loc), i
    token = Token("int", line[start:i], int(value), loc)
    # Stash the suffix on the token text; the parser checks for it.
    if unsigned_suffix:
        token.kind = "uint"
    return token, i


_ESCAPES = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34,
            "a": 7, "b": 8, "f": 12, "v": 11}


def _scan_char(line: str, i: int, loc: SourceLocation) -> tuple[Token, int]:
    n = len(line)
    i += 1  # opening quote
    if i >= n:
        raise LexError("unterminated character literal", loc)
    if line[i] == "\\":
        i += 1
        if i >= n or line[i] not in _ESCAPES:
            raise LexError("unsupported escape in character literal", loc)
        value = _ESCAPES[line[i]]
        i += 1
    else:
        value = ord(line[i])
        i += 1
    if i >= n or line[i] != "'":
        raise LexError("unterminated character literal", loc)
    return Token("char", line[loc.column - 1:i + 1], value, loc), i + 1
