"""Unit tests for event traces, weights, metrics and refinement."""

import pytest

from repro.events import (CallEvent, Converges, Diverges, GoesWrong, IOEvent,
                          RefinementFailure, ReturnEvent, StackMetric,
                          check_quantitative_refinement, check_refinement,
                          dominates_for_all_metrics, prune, weight,
                          weight_of_trace)
from repro.events.trace import (call_depth_profile, is_well_bracketed,
                                open_calls, prefixes, valuation)


def call(name):
    return CallEvent(name)


def ret(name):
    return ReturnEvent(name)


def io(name, *args, result=0):
    return IOEvent(name, list(args), result)


METRIC = StackMetric({"f": 10, "g": 20, "main": 5}, default=8)

# The paper's §2 example trace.
PAPER_TRACE = (call("main"), call("init"), call("random"), ret("random"),
               ret("init"), call("search"), call("search"), ret("search"),
               ret("search"), ret("main"))


class TestEvents:
    def test_event_equality(self):
        assert call("f") == call("f")
        assert call("f") != ret("f")
        assert io("p", 1) == io("p", 1)
        assert io("p", 1) != io("p", 2)

    def test_memory_event_flag(self):
        assert call("f").is_memory_event
        assert ret("f").is_memory_event
        assert not io("p").is_memory_event


class TestTraceOps:
    def test_prune_removes_memory_events(self):
        trace = (call("f"), io("p", 1), ret("f"), io("q", 2))
        assert prune(trace) == (io("p", 1), io("q", 2))

    def test_prune_idempotent(self):
        trace = (call("f"), io("p", 1), ret("f"))
        assert prune(prune(trace)) == prune(trace)

    def test_prefixes_count(self):
        trace = (call("f"), ret("f"))
        assert len(list(prefixes(trace))) == 3

    def test_well_bracketed(self):
        assert is_well_bracketed(PAPER_TRACE)
        assert not is_well_bracketed((ret("f"),))
        assert not is_well_bracketed((call("f"), ret("g")))
        assert is_well_bracketed((call("f"),))  # open calls are fine

    def test_well_bracketed_require_empty(self):
        # A converged execution must close every frame: an open call —
        # a dropped trailing ret — only fails under require_empty,
        # because every prefix of a bracketed trace is itself bracketed.
        assert is_well_bracketed(PAPER_TRACE, require_empty=True)
        assert not is_well_bracketed((call("f"),), require_empty=True)
        assert not is_well_bracketed((call("f"), call("g"), ret("g")),
                                     require_empty=True)
        assert is_well_bracketed((), require_empty=True)

    def test_bracket_checker_balanced(self):
        from repro.events.stream import BracketChecker

        checker = BracketChecker()
        checker(call("f"))
        assert checker.ok and not checker.balanced()
        checker(ret("f"))
        assert checker.balanced()

    def test_depth_profile(self):
        trace = (call("f"), call("g"), ret("g"), ret("f"))
        assert call_depth_profile(trace) == [1, 2, 1, 0]

    def test_open_calls(self):
        trace = (call("f"), call("g"), ret("g"), call("g"))
        assert open_calls(trace) == {"f": 1, "g": 1}


class TestWeights:
    def test_valuation_empty(self):
        assert valuation(METRIC, ()) == 0

    def test_valuation_balanced_trace_is_zero(self):
        assert valuation(METRIC, (call("f"), ret("f"))) == 0

    def test_weight_is_peak_not_final(self):
        trace = (call("f"), call("g"), ret("g"), ret("f"))
        assert valuation(METRIC, trace) == 0
        assert weight_of_trace(METRIC, trace) == 30

    def test_weight_paper_example(self):
        # W = M(main) + max(M(init)+M(random), 2*M(search))
        metric = StackMetric({"main": 10, "init": 4, "random": 6,
                              "search": 8})
        assert weight_of_trace(metric, PAPER_TRACE) == 10 + max(4 + 6, 16)

    def test_weight_of_behavior(self):
        behavior = Converges((call("f"),), 0)
        assert weight(METRIC, behavior) == 10

    def test_io_events_cost_zero(self):
        assert weight_of_trace(METRIC, (io("p", 3),)) == 0

    def test_weight_nonnegative(self):
        assert weight_of_trace(METRIC, (ret("f"),)) == 0


class TestStackMetric:
    def test_call_ret_antisymmetric(self):
        assert METRIC(call("f")) == 10
        assert METRIC(ret("f")) == -10

    def test_external_costs_zero(self):
        assert METRIC(io("sin", 1.0, result=0.8)) == 0

    def test_unknown_function_raises(self):
        with pytest.raises(KeyError):
            StackMetric({"f": 10})(call("unknown"))

    def test_default(self):
        metric = StackMetric({"f": 8}, default=2)
        assert metric(call("zzz")) == 2

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            StackMetric({"f": -1})

    def test_uniform_and_zero(self):
        uniform = StackMetric.uniform(["a", "b"], 16)
        assert uniform.cost("a") == uniform.cost("b") == 16
        assert StackMetric.zero()(call("anything")) == 0


class TestBehaviors:
    def test_pruned_preserves_kind(self):
        assert isinstance(Converges((call("f"),), 3).pruned(), Converges)
        assert isinstance(Diverges((call("f"),)).pruned(), Diverges)
        assert isinstance(GoesWrong((call("f"),), "x").pruned(), GoesWrong)

    def test_converges_equality_includes_return_code(self):
        assert Converges((), 0) != Converges((), 1)


class TestRefinement:
    def test_identical_behaviors_refine(self):
        behavior = Converges(PAPER_TRACE, 0)
        check_refinement(behavior, behavior)
        check_quantitative_refinement(behavior, behavior, METRIC)

    def test_memory_events_may_differ(self):
        source = Converges((call("f"), io("p", 1), ret("f")), 0)
        target = Converges((io("p", 1),), 0)  # assembly level: no call events
        check_refinement(target, source)

    def test_io_mismatch_fails(self):
        source = Converges((io("p", 1),), 0)
        target = Converges((io("p", 2),), 0)
        with pytest.raises(RefinementFailure):
            check_refinement(target, source)

    def test_return_code_mismatch_fails(self):
        with pytest.raises(RefinementFailure):
            check_refinement(Converges((), 1), Converges((), 0))

    def test_wrong_source_allows_anything(self):
        source = GoesWrong((), "boom")
        target = Converges((io("p", 99),), 42)
        check_refinement(target, source)
        check_quantitative_refinement(target, source, METRIC)

    def test_wrong_target_fails(self):
        with pytest.raises(RefinementFailure):
            check_refinement(GoesWrong((), "boom"), Converges((), 0))

    def test_weight_increase_fails(self):
        source = Converges((call("f"), ret("f")), 0)
        target = Converges((call("f"), call("f"), ret("f"), ret("f")), 0)
        with pytest.raises(RefinementFailure):
            check_quantitative_refinement(target, source, METRIC)

    def test_weight_decrease_allowed(self):
        source = Converges((call("f"), call("f"), ret("f"), ret("f")), 0)
        target = Converges((call("f"), ret("f")), 0)
        check_quantitative_refinement(target, source, METRIC)

    def test_termination_kind_must_match(self):
        with pytest.raises(RefinementFailure):
            check_refinement(Diverges(()), Converges((), 0))


class TestAllMetricsDomination:
    def test_reflexive(self):
        assert dominates_for_all_metrics(PAPER_TRACE, PAPER_TRACE)

    def test_fewer_calls_dominated(self):
        assert dominates_for_all_metrics(
            (call("f"), ret("f")),
            (call("f"), call("f"), ret("f"), ret("f")))

    def test_deeper_not_dominated(self):
        assert not dominates_for_all_metrics(
            (call("f"), call("f")), (call("f"), ret("f")))

    def test_different_function_not_dominated(self):
        assert not dominates_for_all_metrics((call("g"),), (call("f"),))

    def test_quantitative_refinement_without_metric(self):
        source = Converges((call("f"), call("g"), ret("g"), ret("f")), 0)
        target = Converges((call("f"), ret("f")), 0)
        check_quantitative_refinement(target, source)

    def test_sum_not_dominated_by_either_branch(self):
        # target holds f and g simultaneously; source never does: with
        # M(f)=M(g)=1 the target weight 2 exceeds the source weight 1.
        target = (call("f"), call("g"))
        source = (call("f"), ret("f"), call("g"), ret("g"))
        assert not dominates_for_all_metrics(target, source)
