"""The stack monitor and bound-vs-measured experiment runners."""

from __future__ import annotations

from typing import Optional

from repro.asm.machine import DEFAULT_FUEL
from repro.driver import Compilation, CompilerOptions, compile_c
from repro.errors import DynamicError
from repro.events.trace import Converges, weight_fold


class MeasuredRun:
    """One monitored execution of a compiled program."""

    def __init__(self, behavior, measured_bytes: int,
                 return_code: Optional[int], output: list) -> None:
        self.behavior = behavior
        self.measured_bytes = measured_bytes
        self.return_code = return_code
        self.output = output

    @property
    def converged(self) -> bool:
        return isinstance(self.behavior, Converges)

    def trace_weight(self, metric) -> int:
        """``W_M`` of the observed trace (the shared streaming fold)."""
        return weight_fold(metric, self.behavior.trace).peak

    def __repr__(self) -> str:
        return (f"MeasuredRun({type(self.behavior).__name__}, "
                f"{self.measured_bytes} bytes)")


def measure_compilation(compilation: Compilation,
                        stack_bytes: int = 1 << 20,
                        fuel: int = DEFAULT_FUEL,
                        decoded: Optional[bool] = None,
                        engine: Optional[str] = None) -> MeasuredRun:
    """Run the compiled program under the monitor.

    ``decoded``/``engine`` pick the ASMsz tier (None = the default);
    the measured watermark must not depend on it — all engines share
    the monitor, and ``tests/unit/test_monitor_watermark.py`` holds
    them to identical accounting.
    """
    output: list = []
    behavior, machine = compilation.run(stack_bytes=stack_bytes,
                                        output=output, fuel=fuel,
                                        decoded=decoded, engine=engine)
    return MeasuredRun(behavior, machine.measured_stack_usage,
                       getattr(behavior, "return_code", None), output)


def measure_c_program(source: str, macros: Optional[dict[str, str]] = None,
                      options: Optional[CompilerOptions] = None,
                      stack_bytes: int = 1 << 20,
                      decoded: Optional[bool] = None,
                      engine: Optional[str] = None) -> MeasuredRun:
    """Compile a C program and measure one execution."""
    compilation = compile_c(source, macros=macros, options=options)
    return measure_compilation(compilation, stack_bytes=stack_bytes,
                               decoded=decoded, engine=engine)


class TightnessProbe:
    """Result of probing a verified bound on the finite-stack machine."""

    def __init__(self, bound: int, at_bound: MeasuredRun,
                 underprovisioned: Optional[MeasuredRun]) -> None:
        self.bound = bound
        self.at_bound = at_bound
        self.underprovisioned = underprovisioned

    @property
    def sound(self) -> bool:
        """The bound-sized stack converged within the bound."""
        return (self.at_bound.converged
                and self.at_bound.measured_bytes <= self.bound)

    @property
    def overflow_detected(self) -> bool:
        """The underprovisioned stack did *not* converge (so the machine's
        overflow detection is live, not silently disabled)."""
        return (self.underprovisioned is not None
                and not self.underprovisioned.converged)


def probe_bound_tightness(compilation: Compilation, bound: int,
                          fuel: int = DEFAULT_FUEL) -> TightnessProbe:
    """Theorem 1, run twice: once at the verified bound and once 4 bytes
    below the measured requirement.

    A stack block of ``bound + 4`` total bytes (the +4 for main's pushed
    return address) must converge with usage at most ``bound``; rerunning
    with 4 bytes fewer than the measured requirement must overflow.  The
    differential campaign uses this to reject bounds that only "hold"
    because overflow was never going to trigger.
    """
    at_bound = measure_compilation(compilation, stack_bytes=bound + 4,
                                   fuel=fuel)
    underprovisioned = None
    if at_bound.converged:
        needed = at_bound.measured_bytes + 4
        underprovisioned = measure_compilation(
            compilation, stack_bytes=needed - 4, fuel=fuel)
    return TightnessProbe(bound, at_bound, underprovisioned)


def minimal_stack(compilation: Compilation, upper_bound: int,
                  fuel: int = DEFAULT_FUEL) -> int:
    """The smallest stack block (in bytes) on which the program converges.

    Binary search between 4 and ``upper_bound + 4`` total stack bytes;
    used by the Theorem 1 benchmark to show the verified bound is tight
    to within the paper's 4 bytes.  ``upper_bound`` is in "sz" terms, so
    the total preallocated block is ``sz + 4``.

    The search is quantized to word multiples: a stack block whose top is
    not 4-aligned leaves ESP misaligned (a real loader would never do
    that), so only word-aligned sizes are meaningful.
    """
    def runs_at(sz: int) -> bool:
        behavior, _machine = compilation.run(stack_bytes=sz + 4, fuel=fuel)
        return isinstance(behavior, Converges)

    if upper_bound % 4:
        upper_bound += 4 - upper_bound % 4
    if not runs_at(upper_bound):
        raise DynamicError(
            f"program does not converge even with {upper_bound} stack bytes")
    low, high = 0, upper_bound // 4
    while low < high:
        mid = (low + high) // 2
        if runs_at(mid * 4):
            high = mid
        else:
            low = mid + 1
    return low * 4
