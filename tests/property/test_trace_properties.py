"""Property-based tests on traces, weights and refinement (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import StackMetric, prune
from repro.events.refinement import dominates_for_all_metrics
from repro.events.trace import (CallEvent, IOEvent, ReturnEvent,
                                is_well_bracketed, open_calls, prefixes,
                                valuation, weight_of_trace)

FUNCTIONS = ("f", "g", "h")


@st.composite
def events(draw):
    kind = draw(st.integers(0, 2))
    name = draw(st.sampled_from(FUNCTIONS))
    if kind == 0:
        return CallEvent(name)
    if kind == 1:
        return ReturnEvent(name)
    return IOEvent("print_int", [draw(st.integers(-100, 100))], 0)


@st.composite
def traces(draw):
    return tuple(draw(st.lists(events(), max_size=30)))


@st.composite
def bracketed_traces(draw):
    """Well-bracketed traces built structurally."""
    def gen(depth):
        out = []
        for _ in range(draw(st.integers(0, 3))):
            choice = draw(st.integers(0, 1 if depth < 3 else 0))
            if choice == 1:
                name = draw(st.sampled_from(FUNCTIONS))
                out.append(CallEvent(name))
                out.extend(gen(depth + 1))
                out.append(ReturnEvent(name))
            else:
                out.append(IOEvent("io", [draw(st.integers(0, 9))], 0))
        return out

    return tuple(gen(0))


@st.composite
def metrics(draw):
    return StackMetric({name: draw(st.integers(0, 64))
                        for name in FUNCTIONS})


class TestValuationAlgebra:
    @given(traces(), traces(), metrics())
    def test_valuation_additive(self, t1, t2, metric):
        assert valuation(metric, t1 + t2) == \
            valuation(metric, t1) + valuation(metric, t2)

    @given(traces(), metrics())
    def test_weight_is_sup_of_prefix_valuations(self, trace, metric):
        expected = max(valuation(metric, p) for p in prefixes(trace))
        expected = max(expected, 0)
        assert weight_of_trace(metric, trace) == expected

    @given(traces(), metrics())
    def test_weight_nonnegative(self, trace, metric):
        assert weight_of_trace(metric, trace) >= 0

    @given(traces(), traces(), metrics())
    def test_weight_of_prefix_bounded(self, t1, t2, metric):
        assert weight_of_trace(metric, t1) <= weight_of_trace(metric, t1 + t2)

    @given(traces())
    def test_zero_metric_collapses_weight(self, trace):
        assert weight_of_trace(StackMetric.zero(), trace) == 0

    @given(bracketed_traces(), metrics())
    def test_bracketed_trace_valuation_zero(self, trace, metric):
        assert is_well_bracketed(trace)
        assert valuation(metric, trace) == 0


class TestPrune:
    @given(traces())
    def test_prune_idempotent(self, trace):
        assert prune(prune(trace)) == prune(trace)

    @given(traces())
    def test_prune_keeps_only_io(self, trace):
        assert all(isinstance(e, IOEvent) for e in prune(trace))

    @given(traces(), traces())
    def test_prune_homomorphic(self, t1, t2):
        assert prune(t1 + t2) == prune(t1) + prune(t2)

    @given(traces(), metrics())
    def test_pruned_weight_zero(self, trace, metric):
        assert weight_of_trace(metric, prune(trace)) == 0


class TestOpenCalls:
    @given(traces(), metrics())
    def test_valuation_decomposes_over_open_calls(self, trace, metric):
        counts = open_calls(trace)
        expected = sum(metric.cost(fn) * count
                       for fn, count in counts.items())
        assert valuation(metric, trace) == expected

    @given(bracketed_traces())
    def test_bracketed_has_no_open_calls(self, trace):
        assert all(v == 0 for v in open_calls(trace).values())


class TestDomination:
    @given(traces())
    def test_reflexive(self, trace):
        assert dominates_for_all_metrics(trace, trace)

    @given(traces())
    def test_empty_always_dominated(self, trace):
        assert dominates_for_all_metrics((), trace)

    @settings(max_examples=50)
    @given(traces(), traces(), metrics())
    def test_domination_implies_weight_inequality(self, target, source,
                                                  metric):
        if dominates_for_all_metrics(target, source):
            assert weight_of_trace(metric, target) <= \
                weight_of_trace(metric, source)

    @given(traces(), traces())
    def test_prefix_always_dominated(self, t1, t2):
        assert dominates_for_all_metrics(t1, t1 + t2)
