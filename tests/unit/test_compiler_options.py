"""Audit of ``CompilerOptions`` identity against the CLI's pass toggles.

The compile caches (shared frontend, campaign ablations, corpus cache
tags) key on ``CompilerOptions.key()``.  The bug class these tests pin
down: a new pass toggle added to ``__init__`` and ``add_common`` but
forgotten in a hand-maintained ``key()`` tuple would silently alias two
different option sets in every cache.  ``key()`` is now derived from the
instance dict, and these tests verify (a) every pairwise flag
combination yields a distinct key, and (b) every CLI pass flag actually
lands on a distinct ``CompilerOptions`` field — so the audit re-runs on
every change to either side.
"""

import inspect
import itertools

from repro.__main__ import _build_parser, _options
from repro.driver import CompilerOptions

#: Every boolean toggle __init__ accepts, with its non-default value.
FLAGS = [name for name in inspect.signature(CompilerOptions).parameters]


def _options_with(enabled: tuple[str, ...]) -> CompilerOptions:
    defaults = {name: parameter.default for name, parameter
                in inspect.signature(CompilerOptions).parameters.items()}
    return CompilerOptions(**{name: not defaults[name] if name in enabled
                              else defaults[name] for name in defaults})


class TestKeyDistinctness:
    def test_every_pairwise_combination_is_distinct(self):
        """Flip every subset of up to two flags: all keys differ."""
        combinations = [()] + [
            combo for r in (1, 2)
            for combo in itertools.combinations(FLAGS, r)]
        keys = {}
        for combo in combinations:
            key = _options_with(combo).key()
            assert key not in keys, \
                f"options {combo} and {keys[key]} collide on {key}"
            keys[key] = combo

    def test_all_subsets_are_distinct(self):
        """The full powerset, while we are at it (2^5 = 32 keys)."""
        keys = set()
        for r in range(len(FLAGS) + 1):
            for combo in itertools.combinations(FLAGS, r):
                keys.add(_options_with(combo).key())
        assert len(keys) == 2 ** len(FLAGS)

    def test_eq_and_hash_follow_key(self):
        a = CompilerOptions(cse=True)
        b = CompilerOptions(cse=True)
        c = CompilerOptions(tailcall=True)
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert len({a, b, c}) == 2

    def test_key_covers_every_field(self):
        """No instance attribute may be missing from the key."""
        options = CompilerOptions()
        assert dict(options.key()) == vars(options)


class TestCliFlagAudit:
    # The CLI spelling of each pass toggle and the field it must flip.
    CLI_FLAGS = {
        "--no-constprop": "constprop",
        "--no-deadcode": "deadcode",
        "--cse": "cse",
        "--tailcall": "tailcall",
        "--spill-all": "spill_everything",
    }

    def _parse(self, extra: list[str]):
        return _build_parser().parse_args(["bounds", "x.c"] + extra)

    def test_every_cli_flag_flips_a_distinct_field(self):
        baseline = _options(self._parse([]))
        seen_keys = {baseline.key()}
        for flag, field in self.CLI_FLAGS.items():
            options = _options(self._parse([flag]))
            assert getattr(options, field) != getattr(baseline, field), \
                f"{flag} does not flip CompilerOptions.{field}"
            assert options.key() not in seen_keys, \
                f"{flag} produced a key collision"
            seen_keys.add(options.key())

    def test_cli_covers_every_init_toggle(self):
        """A toggle added to __init__ must get a CLI spelling too."""
        assert sorted(self.CLI_FLAGS.values()) == sorted(FLAGS)

    def test_pairwise_cli_combinations_distinct(self):
        flags = list(self.CLI_FLAGS)
        keys = set()
        for combo in ([()] + [c for r in (1, 2)
                              for c in itertools.combinations(flags, r)]):
            keys.add(_options(self._parse(list(combo))).key())
        expected = 1 + len(flags) + len(flags) * (len(flags) - 1) // 2
        assert len(keys) == expected
