"""Continuation-based small-step semantics for Clight (paper §4.2).

States are triples ``(S, K, sigma)`` of a statement, a continuation and a
program state; the continuation grammar extends the paper's with the
loop/post split of CompCert's ``Sloop`` and with ``Kblock`` for the
front end's ``switch`` lowering::

    K ::= Kstop | Kseq S K | Kloop1 S1 S2 K | Kloop2 S1 S2 K
        | Kblock K | Kcall x f theta blocks K

Each internal function call emits ``call(f)``; each return emits
``ret(f)``; external calls emit their I/O event.  The driver collects the
event trace and classifies the run as a behavior.
"""

from __future__ import annotations

from typing import Optional

from repro import engines, obs, ops
from repro.clight import ast as cl
from repro.errors import (DynamicError, FuelExhaustedError, MemoryError_,
                          UndefinedBehaviorError)
from repro.events.trace import (Behavior, CallEvent, Converges, Diverges,
                                Event, GoesWrong, IOEvent, ReturnEvent)
from repro.memory import Chunk, Memory
from repro.memory.values import VFloat, VInt, VPtr, VUndef, Value
from repro.events.stream import Consumer, CountingSink, StreamOutcome
from repro.runtime import call_external

DEFAULT_FUEL = 2_000_000

#: Default execution engine: the pre-decoded closure interpreter in
#: :mod:`repro.clight.decode`.  Flip to False (or pass ``decoded=False``)
#: to run this module's legacy statement-tree step loop, which stays as
#: the differential oracle.
DEFAULT_DECODED = True

#: Tier used when decoding is enabled at all: ``"codegen"`` (the
#: per-program specialized driver) or ``"decoded"``.  Per-call
#: ``engine=`` arguments override; ``DEFAULT_DECODED = False`` still
#: forces the legacy loop everywhere (the old kill switch).
DEFAULT_ENGINE = "codegen"


# ---------------------------------------------------------------------------
# Continuations
# ---------------------------------------------------------------------------


class Kont:
    __slots__ = ()


class Kstop(Kont):
    __slots__ = ()


class Kseq(Kont):
    __slots__ = ("stmt", "next")

    def __init__(self, stmt: cl.Stmt, next_: Kont) -> None:
        self.stmt = stmt
        self.next = next_


class Kloop1(Kont):
    """Executing the loop body; continue jumps to the post statement."""

    __slots__ = ("body", "post", "next")

    def __init__(self, body: cl.Stmt, post: cl.Stmt, next_: Kont) -> None:
        self.body = body
        self.post = post
        self.next = next_


class Kloop2(Kont):
    """Executing the post statement; afterwards the loop re-enters."""

    __slots__ = ("body", "post", "next")

    def __init__(self, body: cl.Stmt, post: cl.Stmt, next_: Kont) -> None:
        self.body = body
        self.post = post
        self.next = next_


class Kblock(Kont):
    __slots__ = ("next",)

    def __init__(self, next_: Kont) -> None:
        self.next = next_


class Kcall(Kont):
    """A stack frame: where to resume in the caller."""

    __slots__ = ("dest", "function", "temps", "stackblocks", "next")

    def __init__(self, dest: Optional[str], function: str,
                 temps: dict, stackblocks: dict, next_: Kont) -> None:
        self.dest = dest
        self.function = function
        self.temps = temps
        self.stackblocks = stackblocks
        self.next = next_


# ---------------------------------------------------------------------------
# Global environment and expression evaluation
# ---------------------------------------------------------------------------


class GlobalEnv:
    """Globals allocated in memory, plus the function table (Sigma, Delta)."""

    def __init__(self, program: cl.Program, memory: Memory) -> None:
        self.program = program
        self.memory = memory
        self.globals: dict[str, VPtr] = {}
        for var in program.globals:
            ptr = memory.alloc(var.size, tag=f"global {var.name}")
            memory.store_bytes(ptr, var.image)
            self.globals[var.name] = ptr


def eval_expr(expr: cl.Expr, temps: dict, stackblocks: dict,
              genv: GlobalEnv) -> Value:
    """Big-step evaluation of a pure Clight expression."""
    if isinstance(expr, cl.EConstInt):
        return VInt(expr.value)
    if isinstance(expr, cl.EConstFloat):
        return VFloat(expr.value)
    if isinstance(expr, cl.ETemp):
        return temps.get(expr.name, VUndef())
    if isinstance(expr, cl.EAddrGlobal):
        try:
            return genv.globals[expr.name]
        except KeyError:
            raise UndefinedBehaviorError(
                f"unknown global {expr.name!r}") from None
    if isinstance(expr, cl.EAddrStack):
        try:
            return stackblocks[expr.name]
        except KeyError:
            raise UndefinedBehaviorError(
                f"unknown stack variable {expr.name!r}") from None
    if isinstance(expr, cl.ELoad):
        addr = eval_expr(expr.addr, temps, stackblocks, genv)
        if not isinstance(addr, VPtr):
            raise MemoryError_(f"load through non-pointer {addr!r}")
        return genv.memory.load(expr.chunk, addr)
    if isinstance(expr, cl.EUnop):
        return ops.eval_unop(expr.op, eval_expr(expr.arg, temps, stackblocks, genv))
    if isinstance(expr, cl.EBinop):
        left = eval_expr(expr.left, temps, stackblocks, genv)
        right = eval_expr(expr.right, temps, stackblocks, genv)
        return ops.eval_binop(expr.op, left, right)
    raise DynamicError(f"unknown expression {type(expr).__name__}")


# ---------------------------------------------------------------------------
# The machine
# ---------------------------------------------------------------------------


class ClightMachine:
    """Small-step executor for one Clight program."""

    def __init__(self, program: cl.Program, output: Optional[list] = None) -> None:
        self.program = program
        self.memory = Memory()
        self.genv = GlobalEnv(program, self.memory)
        self.output = output
        # Current activation.
        self.stmt: cl.Stmt = cl.SSkip()
        self.kont: Kont = Kstop()
        self.temps: dict[str, Value] = {}
        self.stackblocks: dict[str, VPtr] = {}
        self.current_function: Optional[str] = None
        self.return_code: Optional[int] = None
        self.done = False

    # -- program entry ---------------------------------------------------------

    def enter_main(self) -> Event:
        main = self.program.function(self.program.main)
        if main.params:
            raise DynamicError("main with parameters is not supported")
        return self._enter_function(main, [], dest=None, kont=Kstop())

    def _enter_function(self, function: cl.Function, args: list[Value],
                        dest: Optional[str], kont: Kont) -> Event:
        if len(args) != len(function.params):
            raise UndefinedBehaviorError(
                f"{function.name} expects {len(function.params)} args, "
                f"got {len(args)}")
        new_temps: dict[str, Value] = {}
        for name, value in zip(function.params, args):
            new_temps[name] = value
        new_blocks: dict[str, VPtr] = {}
        for var in function.stackvars:
            new_blocks[var.name] = self.memory.alloc(
                var.size, tag=f"{function.name}.{var.name}")
        call_kont = Kcall(dest, self.current_function or "", self.temps,
                          self.stackblocks, kont)
        self.temps = new_temps
        self.stackblocks = new_blocks
        self.current_function = function.name
        self.stmt = function.body
        self.kont = call_kont
        return CallEvent(function.name)

    # -- one step ----------------------------------------------------------------

    def step(self) -> Optional[Event]:
        """Perform one small step; returns the emitted event, if any."""
        stmt = self.stmt
        if isinstance(stmt, cl.SSkip):
            return self._step_skip()
        if isinstance(stmt, cl.SSeq):
            self.stmt = stmt.first
            self.kont = Kseq(stmt.second, self.kont)
            return None
        if isinstance(stmt, cl.SSet):
            self.temps[stmt.temp] = self._eval(stmt.expr)
            self.stmt = cl.SSkip()
            return None
        if isinstance(stmt, cl.SStore):
            addr = self._eval(stmt.addr)
            value = self._eval(stmt.value)
            if not isinstance(addr, VPtr):
                raise MemoryError_(f"store through non-pointer {addr!r}")
            self.memory.store(stmt.chunk, addr, stmt.chunk.normalize(value))
            self.stmt = cl.SSkip()
            return None
        if isinstance(stmt, cl.SIf):
            cond = self._eval(stmt.cond)
            self.stmt = stmt.then if cond.is_true() else stmt.otherwise
            return None
        if isinstance(stmt, cl.SLoop):
            self.stmt = stmt.body
            self.kont = Kloop1(stmt.body, stmt.post, self.kont)
            return None
        if isinstance(stmt, cl.SBlock):
            self.stmt = stmt.body
            self.kont = Kblock(self.kont)
            return None
        if isinstance(stmt, cl.SBreak):
            return self._step_break()
        if isinstance(stmt, cl.SContinue):
            return self._step_continue()
        if isinstance(stmt, cl.SReturn):
            value = self._eval(stmt.value) if stmt.value is not None else None
            return self._do_return(value)
        if isinstance(stmt, cl.SCall):
            return self._step_call(stmt)
        raise DynamicError(f"unknown statement {type(stmt).__name__}")

    def _eval(self, expr: cl.Expr) -> Value:
        return eval_expr(expr, self.temps, self.stackblocks, self.genv)

    def _step_skip(self) -> Optional[Event]:
        kont = self.kont
        if isinstance(kont, Kseq):
            self.stmt = kont.stmt
            self.kont = kont.next
            return None
        if isinstance(kont, Kloop1):
            self.stmt = kont.post
            self.kont = Kloop2(kont.body, kont.post, kont.next)
            return None
        if isinstance(kont, Kloop2):
            self.stmt = cl.SLoop(kont.body, kont.post)
            self.kont = kont.next
            return None
        if isinstance(kont, Kblock):
            self.kont = kont.next
            return None
        if isinstance(kont, Kcall):
            # Fall through the end of a function body: return no value.
            return self._do_return(None)
        assert isinstance(kont, Kstop)
        self.done = True
        self.return_code = 0
        return None

    def _step_break(self) -> Optional[Event]:
        kont = self.kont
        while isinstance(kont, Kseq):
            kont = kont.next
        if isinstance(kont, (Kloop1, Kloop2, Kblock)):
            self.stmt = cl.SSkip()
            self.kont = kont.next
            return None
        raise DynamicError("break outside of a loop or block")

    def _step_continue(self) -> Optional[Event]:
        kont = self.kont
        while isinstance(kont, (Kseq, Kblock)):
            kont = kont.next
        if isinstance(kont, Kloop1):
            self.stmt = kont.post
            self.kont = Kloop2(kont.body, kont.post, kont.next)
            return None
        raise DynamicError("continue outside of a loop body")

    def _do_return(self, value: Optional[Value]) -> Event:
        assert self.current_function is not None
        function_name = self.current_function
        for ptr in self.stackblocks.values():
            self.memory.free(ptr)
        kont = self.kont
        while not isinstance(kont, (Kcall, Kstop)):
            kont = kont.next
        if isinstance(kont, Kstop):
            raise DynamicError("return with a corrupt continuation")
        event = ReturnEvent(function_name)
        if isinstance(kont.next, Kstop):
            # The outermost function returned: the program converges.
            self.done = True
            if kont.dest is not None:
                kont.temps[kont.dest] = value if value is not None else VUndef()
            if value is None:
                value = VInt(0)
            self.return_code = value.signed if isinstance(value, VInt) else 0
            return event
        self.temps = kont.temps
        self.stackblocks = kont.stackblocks
        self.current_function = kont.function
        if kont.dest is not None:
            self.temps[kont.dest] = value if value is not None else VUndef()
        self.stmt = cl.SSkip()
        self.kont = kont.next
        return event

    def _step_call(self, stmt: cl.SCall) -> Optional[Event]:
        args = [self._eval(arg) for arg in stmt.args]
        if self.program.is_internal(stmt.callee):
            function = self.program.function(stmt.callee)
            self.stmt = cl.SSkip()
            return self._enter_function(function, args, stmt.dest, self.kont)
        result, event = call_external(
            stmt.callee, args,
            alloc=lambda size: self.memory.alloc(size, tag="malloc"),
            output=self.output)
        if stmt.dest is not None:
            self.temps[stmt.dest] = result
        self.stmt = cl.SSkip()
        return event


def run_streamed(program: cl.Program, sink: Consumer,
                 fuel: int = DEFAULT_FUEL, output: Optional[list] = None,
                 decoded: Optional[bool] = None,
                 engine: Optional[str] = None) -> StreamOutcome:
    """Run ``program``, pushing every event into ``sink`` as it is emitted.

    This is the streaming entry point: consumers (pruned-trace matchers,
    weight folds, plain ``list.append``) see the events without the
    interpreter materializing a trace.  ``decoded`` selects the engine
    (None = :data:`DEFAULT_DECODED`); both engines produce the same
    events, outcome classification and step counts by construction.
    """
    engine = engines.resolve(DEFAULT_DECODED, DEFAULT_ENGINE,
                             decoded, engine)
    if obs.enabled:
        # Wrapped at the entry point only — the step loops stay untouched.
        with obs.span("exec.clight", engine=engine) as sp:
            outcome = _run_streamed(program, sink, fuel, output, engine)
        sp.set(kind=outcome.kind, steps=outcome.steps,
               events=outcome.events)
        obs.add("interp.clight.steps", outcome.steps)
        obs.add("interp.clight.seconds", sp.dur)
        obs.add("interp.clight.runs")
        if engine == "codegen":
            obs.add("interp.codegen.steps", outcome.steps)
            obs.add("interp.codegen.seconds", sp.dur)
            obs.add("interp.codegen.runs")
        return outcome
    return _run_streamed(program, sink, fuel, output, engine)


def _run_streamed(program: cl.Program, sink: Consumer, fuel: int,
                  output: Optional[list], engine: str) -> StreamOutcome:
    if engine == "codegen":
        from repro.clight import codegen
        return codegen.run_streamed(program, sink, fuel, output=output)
    if engine == "decoded":
        from repro.clight import decode
        return decode.run_streamed(program, sink, fuel, output=output)
    counting = CountingSink(sink)
    machine = ClightMachine(program, output=output)
    i = 0
    try:
        counting(machine.enter_main())
        for i in range(fuel):
            if machine.done:
                break
            event = machine.step()
            if event is not None:
                counting(event)
        else:
            return StreamOutcome(StreamOutcome.DIVERGES,
                                 events=counting.count, steps=fuel)
    except FuelExhaustedError:
        return StreamOutcome(StreamOutcome.DIVERGES,
                             events=counting.count, steps=i)
    except DynamicError as exc:
        return StreamOutcome(StreamOutcome.GOES_WRONG, reason=str(exc),
                             events=counting.count, steps=i)
    if not machine.done:
        return StreamOutcome(StreamOutcome.DIVERGES,
                             events=counting.count, steps=i)
    assert machine.return_code is not None
    return StreamOutcome(StreamOutcome.CONVERGES,
                         return_code=machine.return_code,
                         events=counting.count, steps=i)


def run_program(program: cl.Program, fuel: int = DEFAULT_FUEL,
                output: Optional[list] = None,
                decoded: Optional[bool] = None,
                engine: Optional[str] = None) -> Behavior:
    """Run ``program`` from ``main`` and classify the result as a behavior."""
    trace: list[Event] = []
    outcome = run_streamed(program, trace.append, fuel, output=output,
                           decoded=decoded, engine=engine)
    return outcome.to_behavior(trace)


def run_call(program: cl.Program, function_name: str, args: list[Value],
             fuel: int = DEFAULT_FUEL) -> tuple[Behavior, Optional[Value]]:
    """Run a single function call (used by the logic's soundness tests).

    Returns the behavior of the call together with the returned value when
    the call converges.
    """
    trace: list[Event] = []
    machine = ClightMachine(program)
    result_holder: dict[str, Value] = {}
    machine.temps = result_holder
    machine.current_function = None
    function = program.function(function_name)
    try:
        trace.append(machine._enter_function(function, args, "$result", Kstop()))
        for _ in range(fuel):
            if machine.done:
                break
            event = machine.step()
            if event is not None:
                trace.append(event)
        else:
            return Diverges(trace), None
    except DynamicError as exc:
        return GoesWrong(trace, reason=str(exc)), None
    if not machine.done:
        return Diverges(trace), None
    return Converges(trace, machine.return_code or 0), result_holder.get("$result")
