/* Table 2: sum — recursive array sum, linear recursion depth.
 * Verified bound: (hi - lo) * M(sum) bytes. */

#ifndef N
#define N 200
#endif

typedef unsigned int u32;
u32 a[N];
u32 seed = 5;

u32 rnd() {
    seed = seed * 1664525 + 1013904223;
    return seed;
}

u32 sum(u32 lo, u32 hi) {
    if (lo >= hi) return 0;
    return a[lo] + sum(lo + 1, hi);
}

int main() {
    u32 i, total = 0, check = 0;
    for (i = 0; i < N; i++) {
        a[i] = rnd() % 100;
        check = check + a[i];
    }
    total = sum(0, N);
    print_int((int)total);
    return total == check;
}
