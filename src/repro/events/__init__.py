"""Event traces, weights and quantitative refinement (paper §3.1).

Executions of every language in the pipeline emit *events*: observable I/O
events (external function calls) and *memory events* ``call(f)`` /
``ret(f)`` recording internal function calls and returns.  A *resource
metric* prices each event; the *weight* of a behavior under a metric is the
supremum of the valuations of its finite prefixes and describes the stack
space the execution needs.
"""

from repro.events.metrics import StackMetric
from repro.events.refinement import (
    RefinementFailure,
    check_quantitative_refinement,
    check_refinement,
    dominates_for_all_metrics,
)
from repro.events.trace import (
    Behavior,
    CallEvent,
    Converges,
    Diverges,
    Event,
    GoesWrong,
    IOEvent,
    ReturnEvent,
    Trace,
    prefixes,
    prune,
    valuation,
    weight,
    weight_of_trace,
)

__all__ = [
    "Event",
    "IOEvent",
    "CallEvent",
    "ReturnEvent",
    "Trace",
    "Behavior",
    "Converges",
    "Diverges",
    "GoesWrong",
    "prefixes",
    "prune",
    "valuation",
    "weight",
    "weight_of_trace",
    "StackMetric",
    "check_refinement",
    "check_quantitative_refinement",
    "dominates_for_all_metrics",
    "RefinementFailure",
]
