"""The ``--stack`` hint contract under the codegen tier, catalog-wide.

`test_stack_hint.py` pins the paper's 4-byte gap (bound N runs, N - 4
overflows) on the default engine.  The codegen tier fuses instructions
that move ESP — espadd+call superinstructions combine two stack checks
into one — so this sweep re-proves the exact boundary there: the bound
is exactly sufficient, one slot less overflows, and the measured
high-water mark is byte-identical to the decoded engine's.  Fusion
cannot be allowed to smuggle off-by-one ESP accounting past Theorem 1.
"""

import pytest

from repro.analyzer import StackAnalyzer
from repro.driver import compile_c
from repro.events.trace import Converges, GoesWrong
from repro.programs.catalog import AUTO_ANALYZABLE
from repro.programs.loader import load_source

FUEL = 150_000_000


@pytest.mark.parametrize("path", AUTO_ANALYZABLE)
def test_bound_exactly_sufficient_under_codegen(path):
    compilation = compile_c(load_source(path), filename=path)
    analysis = StackAnalyzer(compilation.clight).analyze()
    bound = analysis.bound_bytes(compilation.asm.main, compilation.metric)

    at_bound, machine = compilation.run(stack_bytes=bound, fuel=FUEL,
                                        engine="codegen")
    assert isinstance(at_bound, Converges), (
        f"{path}: --stack {bound} must suffice on codegen, got "
        f"{at_bound!r}")
    assert machine.measured_stack_usage <= bound

    # The watermark must be byte-identical to the decoded engine's: the
    # monitor is shared, and fused ESP updates must hit it identically.
    _decoded, oracle = compilation.run(stack_bytes=bound, fuel=FUEL,
                                       engine="decoded")
    assert machine.measured_stack_usage == oracle.measured_stack_usage

    under, _machine = compilation.run(stack_bytes=bound - 4, fuel=FUEL,
                                      engine="codegen")
    assert isinstance(under, GoesWrong), (
        f"{path}: --stack {bound - 4} must overflow under codegen")
    assert "overflow" in under.reason
