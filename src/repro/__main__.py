"""Command-line driver: Quantitative CompCert as a tool.

    python -m repro bounds  prog.c          # verified per-function bounds
    python -m repro run     prog.c          # execute on ASMsz + measure
    python -m repro dump    prog.c --level asm
    python -m repro trace   prog.c          # event trace of the execution
    python -m repro fuzz --seeds 200 --jobs 4   # differential campaign
    python -m repro serve --port 8642       # certified-bounds HTTP daemon

Common flags: ``-D NAME=VALUE`` feeds the preprocessor, ``--no-constprop``
/ ``--no-deadcode`` / ``--cse`` / ``--tailcall`` / ``--spill-all`` toggle
passes, ``--stack BYTES`` sets the preallocated ASMsz stack.

Observability: ``--trace-out FILE`` writes the span trace of the run
(``.jsonl`` = span records, anything else = a Chrome ``chrome://tracing``
document) and ``--metrics-out FILE`` writes the metrics snapshot; both
enable instrumentation for the whole command (``docs/OBSERVABILITY.md``).

Exit codes: 0 success, 1 a check failed (failing campaign seeds,
surviving mutation operators), 2 diagnosed errors (bad input, I/O),
125 a ``run`` that did not converge.
"""

from __future__ import annotations

import argparse
import sys

from repro import obs
from repro.analyzer import StackAnalyzer
from repro.driver import CompilerOptions, compile_c
from repro.errors import ReproError
from repro.events.trace import Converges


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="End-to-end verified stack bounds for C programs "
                    "(PLDI 2014 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("file", help="C source file")
        p.add_argument("-D", dest="defines", action="append", default=[],
                       metavar="NAME=VALUE",
                       help="preprocessor definition (repeatable)")
        p.add_argument("--no-constprop", action="store_true")
        p.add_argument("--no-deadcode", action="store_true")
        p.add_argument("--cse", action="store_true",
                       help="enable common-subexpression elimination")
        p.add_argument("--tailcall", action="store_true",
                       help="enable self-tail-call recognition")
        p.add_argument("--spill-all", action="store_true",
                       help="disable register allocation (ablation)")
        add_backend(p)
        add_obs(p)
        return p

    def add_backend(p):
        p.add_argument("--bounds-backend", default=None,
                       choices=("fm", "z3", "cross"),
                       help="decision backend for bound comparisons: the "
                            "Fourier-Motzkin procedure (fm, default), the "
                            "z3 SMT translation (z3), or both agree-or-"
                            "fail (cross)")
        return p

    def add_obs(p):
        p.add_argument("--trace-out", default=None, metavar="FILE",
                       help="enable span tracing; write the spans here "
                            "(.jsonl = records, else Chrome trace JSON)")
        p.add_argument("--metrics-out", default=None, metavar="FILE",
                       help="enable metrics; write the snapshot here (JSON)")
        return p

    bounds = add_common(sub.add_parser(
        "bounds", help="derive and print verified stack bounds"))
    bounds.add_argument("--check", action="store_true",
                        help="re-check the emitted logic derivations")

    run = add_common(sub.add_parser(
        "run", help="execute on the finite-stack ASMsz machine"))
    run.add_argument("--stack", type=int, default=None, metavar="BYTES",
                     help="stack size sz (default: the verified bound)")
    run.add_argument("--fuel", type=int, default=200_000_000)
    run.add_argument("--engine", default=None,
                     choices=["legacy", "decoded", "codegen"],
                     help="force an execution tier (default: codegen; "
                          "legacy and decoded stay as oracles)")

    dump = add_common(sub.add_parser(
        "dump", help="print an intermediate representation"))
    dump.add_argument("--level", default="asm",
                      choices=["clight", "rtl", "linear", "mach", "asm"])
    dump.add_argument("--function", default=None,
                      help="restrict the dump to one function")

    trace = add_common(sub.add_parser(
        "trace", help="print the event trace of one execution"))
    trace.add_argument("--fuel", type=int, default=5_000_000)
    trace.add_argument("--limit", type=int, default=200,
                       help="maximum number of events to print")

    profile = add_common(sub.add_parser(
        "profile", help="print per-stage timings (frontend, backend, "
                        "analysis, execution)"))
    profile.add_argument("--fuel", type=int, default=200_000_000)
    profile.add_argument("--legacy", action="store_true",
                         help="accepted for compatibility; all three "
                              "tiers are always timed")

    certify = add_common(sub.add_parser(
        "certify", help="emit a re-checkable proof certificate (JSON)"))
    certify.add_argument("-o", "--output", default=None,
                         help="write the certificate here (default stdout)")

    check = add_common(sub.add_parser(
        "check-cert", help="re-check a certificate against a program"))
    check.add_argument("certificate", help="certificate JSON file")

    fuzz = sub.add_parser(
        "fuzz", help="run the differential-testing campaign on generated "
                     "programs (see docs/TESTING.md)")
    fuzz.add_argument("--seeds", type=int, default=50,
                      help="number of generated programs to check")
    fuzz.add_argument("--start", type=int, default=0,
                      help="first seed of the campaign")
    fuzz.add_argument("--jobs", type=int, default=1, metavar="J",
                      help="worker processes (1 = run in-process)")
    fuzz.add_argument("--metric", default="compiler",
                      choices=["compiler", "uniform", "zero"],
                      help="stack metric for the weight/bound oracles")
    fuzz.add_argument("--smoke", action="store_true",
                      help="small time-boxed CI campaign (overrides --seeds)")
    fuzz.add_argument("--deep", action="store_true",
                      help="also interpret the RTL and Mach levels")
    fuzz.add_argument("--recursion", action="store_true",
                      help="generate (bounded) recursive programs too")
    fuzz.add_argument("--funcptr", action="store_true",
                      help="generate function-pointer dispatch programs too")
    fuzz.add_argument("--no-probes", action="store_true",
                      help="skip the bound-tightness stack probes")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="do not minimize failing seeds")
    from repro.testing.faults import metric_fault_names

    fuzz.add_argument("--plant", default=None, choices=metric_fault_names(),
                      help="inject a known metric bug (campaign self-test)")
    fuzz.add_argument("--mutation-matrix", action="store_true",
                      help="run the fault-injection matrix instead of a "
                           "campaign: apply every registered mutation "
                           "operator and report which checker catches it")
    fuzz.add_argument("--matrix-report", default=None, metavar="FILE",
                      help="write the per-operator detection report (JSON) "
                           "here (with --mutation-matrix)")
    fuzz.add_argument("--cache-dir", default=None, metavar="DIR",
                      help="corpus cache directory (default "
                           ".repro-cache/corpus)")
    fuzz.add_argument("--no-cache", action="store_true",
                      help="disable the corpus cache")
    fuzz.add_argument("--report", default=None, metavar="FILE",
                      help="write a JSONL campaign report here")
    fuzz.add_argument("--repro-dir", default=None, metavar="DIR",
                      help="write minimized .c reproducers here "
                           "(default: repro-failures/ when a seed fails)")
    fuzz.add_argument("--time-budget", type=float, default=None,
                      metavar="SECONDS", help="stop after this much wall "
                                              "clock")
    fuzz.add_argument("--status-interval", type=float, default=10.0,
                      metavar="SECONDS",
                      help="period of the progress line (ETA, verdict "
                           "counts); 0 disables it")
    add_backend(fuzz)
    add_obs(fuzz)

    serve = sub.add_parser(
        "serve", help="run the certified-bounds HTTP daemon "
                      "(docs/SERVING.md)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642,
                       help="listen port (0 = pick an ephemeral port)")
    serve.add_argument("--jobs", type=int, default=2, metavar="J",
                       help="worker processes (0 = run in-process)")
    serve.add_argument("--queue", type=int, default=16, metavar="N",
                       help="max in-flight requests before 503 backpressure")
    serve.add_argument("--timeout", type=float, default=60.0,
                       metavar="SECONDS", help="per-request budget")
    serve.add_argument("--store-dir", default=None, metavar="DIR",
                       help="content-addressed result store directory "
                            "(default .repro-cache/serve)")
    serve.add_argument("--no-store", action="store_true",
                       help="keep the result store in memory only")
    serve.add_argument("--store-max-mb", type=int, default=256,
                       metavar="MB", help="result-store size cap")
    add_obs(serve)
    return parser


def _options(args) -> CompilerOptions:
    return CompilerOptions(
        constprop=not args.no_constprop,
        deadcode=not args.no_deadcode,
        cse=args.cse,
        tailcall=args.tailcall,
        spill_everything=args.spill_all)


def _macros(args) -> dict[str, str]:
    macros = {}
    for item in args.defines:
        name, _, value = item.partition("=")
        macros[name] = value or "1"
    return macros


def _compile(args):
    with open(args.file) as handle:
        source = handle.read()
    return compile_c(source, filename=args.file, macros=_macros(args),
                     options=_options(args))


def cmd_bounds(args) -> int:
    compilation = _compile(args)
    analysis = StackAnalyzer(compilation.clight).analyze()
    if args.check:
        report = analysis.check()
        status = "exact" if report.fully_exact else "sampled"
        print(f"# derivations re-checked: {report.nodes} nodes, "
              f"{report.exact_conditions} side conditions ({status})")
    from repro.logic.bexpr import param_names

    metric = compilation.metric
    print(f"{'function':24s} {'SF':>6s} {'M(f)':>6s} {'bound':>8s}")
    for name in sorted(analysis.functions):
        expr = analysis.bound_expr(name)
        if param_names(expr):
            # A recursive function's bound depends on its arguments;
            # print it symbolically (callers with concrete arguments —
            # main included — still get byte figures below).
            bound = repr(expr)
        else:
            bound = f"{analysis.bound_bytes(name, metric):8d}"
        print(f"{name:24s} {compilation.frame_sizes[name]:6d} "
              f"{metric.cost(name):6d} {bound}")
    main_bound = analysis.bound_bytes(compilation.asm.main, metric)
    print(f"\nstack requirement for {compilation.asm.main}: "
          f"{main_bound} bytes (run with --stack {main_bound})")
    return 0


def cmd_run(args) -> int:
    compilation = _compile(args)
    if args.stack is None:
        analysis = StackAnalyzer(compilation.clight).analyze()
        sz = analysis.bound_bytes(compilation.asm.main, compilation.metric)
        print(f"# using the verified bound as stack size: {sz} bytes")
    else:
        sz = args.stack
    # --stack N preallocates exactly N bytes; the hint printed by
    # `repro bounds` is then exactly sufficient (N works, N-4 overflows,
    # the 4 being main's return-address slot of the paper's metric).
    output: list = []
    behavior, machine = compilation.run(stack_bytes=sz, output=output,
                                        fuel=args.fuel, engine=args.engine)
    for item in output:
        print(item)
    print(f"# {type(behavior).__name__}"
          + (f", exit code {behavior.return_code}"
             if isinstance(behavior, Converges) else
             f": {getattr(behavior, 'reason', '')}"))
    print(f"# measured stack usage: {machine.measured_stack_usage} bytes "
          f"(of {sz} available)")
    if isinstance(behavior, Converges):
        return behavior.return_code & 0xFF
    return 125


def cmd_dump(args) -> int:
    compilation = _compile(args)
    if args.level == "clight":
        program = compilation.clight
        names = [args.function] if args.function else program.functions
        for name in names:
            function = program.function(name)
            print(f"{name}(params={function.params}, "
                  f"stackvars={function.stackvars})")
            print(f"    {function.body!r}")
        return 0
    level = {"rtl": compilation.rtl, "linear": compilation.linear,
             "mach": compilation.mach, "asm": compilation.asm}[args.level]
    names = [args.function] if args.function else list(level.functions)
    for name in names:
        print(level.functions[name].pretty())
        print()
    return 0


def cmd_trace(args) -> int:
    """Stream one Clight execution's events to stdout.

    ``--limit`` only truncates the *printing*: the verdict and the
    weight fold always cover the full event stream, so the reported
    weight is ``W_M`` of the whole run, not of the printed prefix.
    """
    from repro.clight.semantics import run_streamed
    from repro.events.stream import Tee
    from repro.events.trace import WeightFold

    compilation = _compile(args)
    fold = WeightFold(compilation.metric)
    printed = 0

    def printer(event):
        nonlocal printed
        if printed < args.limit:
            print(repr(event))
        printed += 1

    outcome = run_streamed(compilation.clight, Tee(printer, fold),
                           fuel=args.fuel)
    if outcome.events > args.limit:
        print(f"... +{outcome.events - args.limit} more events")
    kind = {"converges": "Converges", "diverges": "Diverges",
            "goes-wrong": "GoesWrong"}[outcome.kind]
    print(f"# {kind}; {outcome.events} events; "
          f"weight under the compiled metric: {fold.peak} bytes")
    return 0


def _span_note(record: dict) -> str:
    """Human note for one span row: its attrs plus a derived steps/s."""
    attrs = dict(record.get("attrs") or {})
    parts = [f"{key}={value}" for key, value in sorted(attrs.items())]
    steps = attrs.get("steps")
    if steps and record["dur"]:
        parts.append(f"{steps / record['dur']:,.0f} steps/s")
    return ", ".join(parts)


def _print_span_tree(records: list[dict]) -> None:
    """Pretty-print finished span records as an indented timing tree.

    Runs of same-named siblings (one ``checker.function`` span per
    function, say) collapse into one aggregate ``×N`` line.
    """
    children: dict[int, list[dict]] = {}
    roots: list[dict] = []
    for record in records:
        parent = record["parent"]
        if parent is None:
            roots.append(record)
        else:
            children.setdefault(parent, []).append(record)

    def emit(record: dict, depth: int) -> None:
        label = "  " * depth + record["name"]
        note = _span_note(record)
        print(f"{label:32s} {record['dur'] * 1000:10.2f} ms"
              + (f"  ({note})" if note else ""))
        by_name: dict[str, list[dict]] = {}
        for kid in children.get(record["id"], []):
            by_name.setdefault(kid["name"], []).append(kid)
        for name, group in by_name.items():
            if len(group) == 1:
                emit(group[0], depth + 1)
            else:
                total = sum(r["dur"] for r in group)
                label = "  " * (depth + 1) + name
                print(f"{label:32s} {total * 1000:10.2f} ms  "
                      f"(×{len(group)})")

    for record in roots:
        emit(record, 0)
    total = sum(record["dur"] for record in roots)
    print(f"{'total':32s} {total * 1000:10.2f} ms")


def cmd_profile(args) -> int:
    """Per-stage timing report rendered from the span layer.

    There is no second timing path: ``profile`` enables observability,
    runs the pipeline once, and prints the span tree the instrumented
    layers recorded (compile passes, analysis, checking, one execution
    per engine, plus the per-language streamed interpreters the deep
    campaign mode uses).
    """
    from repro.clight import semantics as clight_sem
    from repro.events.stream import null_sink
    from repro.mach import semantics as mach_sem
    from repro.rtl import semantics as rtl_sem

    obs.enable()
    mark = len(obs.span_records())

    compilation = _compile(args)
    analysis = StackAnalyzer(compilation.clight).analyze()
    sz = analysis.bound_bytes(compilation.asm.main, compilation.metric)
    analysis.check()

    tiers = ["legacy", "decoded", "codegen"]
    for tier in tiers:
        compilation.run(stack_bytes=sz + 4, fuel=args.fuel, engine=tier)

    # Per-language interpreter throughput: the same tower levels the
    # deep campaign mode executes, on their streaming entry points.
    levels = [("clight", clight_sem, compilation.clight),
              ("rtl", rtl_sem, compilation.rtl),
              ("mach", mach_sem, compilation.mach)]
    for _level, sem, program in levels:
        for tier in tiers:
            sem.run_streamed(program, null_sink, fuel=args.fuel,
                             engine=tier)

    print(f"# stack bound for {compilation.asm.main}: {sz} bytes")
    records = obs.span_records()[mark:]
    _print_span_tree(records)
    _print_tier_table(records)
    return 0


def _print_tier_table(records: list[dict]) -> None:
    """Per-language throughput of the three tiers, from the span tree.

    Every ``exec.*`` span carries ``engine`` and ``steps`` attrs; the
    table is a pure rendering of those records — there is no second
    timing path.
    """
    rates: dict[str, dict[str, float]] = {}
    for record in records:
        name = record["name"]
        if not name.startswith("exec."):
            continue
        attrs = dict(record.get("attrs") or {})
        engine, steps = attrs.get("engine"), attrs.get("steps")
        if engine is None or not steps or not record["dur"]:
            continue
        rates.setdefault(name.split(".", 1)[1], {})[engine] = \
            steps / record["dur"]
    if not rates:
        return
    print()
    print(f"{'level':10s} {'legacy':>14s} {'decoded':>14s} "
          f"{'codegen':>14s}   speedup vs legacy")
    for level in ("clight", "rtl", "mach", "asm"):
        row = rates.get(level)
        if not row:
            continue
        cells = [f"{row[e]:>14,.0f}" if e in row else f"{'—':>14s}"
                 for e in ("legacy", "decoded", "codegen")]
        legacy = row.get("legacy")
        ratios = "  ".join(
            f"{e}×{row[e] / legacy:.1f}"
            for e in ("decoded", "codegen") if e in row and legacy)
        print(f"{level:10s} {' '.join(cells)}   {ratios}")


def cmd_certify(args) -> int:
    from repro.logic.certificate import export_certificate

    compilation = _compile(args)
    analysis = StackAnalyzer(compilation.clight).analyze()
    text = export_certificate(analysis)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"# certificate for {len(analysis.functions)} functions "
              f"written to {args.output}")
    else:
        print(text)
    return 0


def cmd_check_cert(args) -> int:
    from repro.logic.certificate import load_certificate
    from repro.logic.bexpr import evaluate

    compilation = _compile(args)
    with open(args.certificate) as handle:
        text = handle.read()
    _gamma, bounds, report = load_certificate(text, compilation.clight)
    status = "exact" if report.fully_exact else "sampled"
    print(f"# certificate OK: {report.nodes} rule applications re-checked "
          f"({status})")
    metric = compilation.metric.as_dict()
    for name in sorted(bounds):
        print(f"{name:24s} {int(evaluate(bounds[name], metric)):8d} bytes")
    return 0


def cmd_mutation_matrix(args) -> int:
    import json

    from repro.testing.faults import run_mutation_matrix

    def progress(outcome):
        mark = "ok " if outcome.detected else "GAP"
        caught = outcome.caught_by or "-"
        print(f"{mark} {outcome.operator:20s} {outcome.layer:12s} "
              f"caught-by={caught:24s} tries={outcome.attempts}  "
              f"{outcome.diagnostic[:60]}")

    report = run_mutation_matrix(progress=progress)
    print(f"# {len(report.outcomes)} operators against {len(report.corpus)} "
          f"corpus programs in {report.elapsed:.1f}s")
    if args.matrix_report:
        with open(args.matrix_report, "w") as handle:
            json.dump(report.as_json(), handle, indent=1)
        print(f"# detection report written to {args.matrix_report}")
    if report.undetected:
        for outcome in report.undetected:
            print(f"# UNDETECTED {outcome.operator}: {outcome.diagnostic}")
        print(f"# {len(report.undetected)} operator(s) survive: each is a "
              "soundness gap in a checker or oracle")
        return 1
    print("# all operators detected")
    return 0


def cmd_fuzz(args) -> int:
    from repro.testing.campaign import (DEFAULT_CACHE_DIR, CampaignConfig,
                                        run_campaign, run_smoke_campaign)

    if args.mutation_matrix:
        return cmd_mutation_matrix(args)
    if args.smoke:
        report = run_smoke_campaign()
    else:
        cache_dir = None if args.no_cache else (args.cache_dir
                                                or DEFAULT_CACHE_DIR)
        repro_dir = args.repro_dir or "repro-failures"
        gen_kwargs = {}
        if args.recursion:
            gen_kwargs["recursion"] = True
        if args.funcptr:
            gen_kwargs["funcptr"] = True
        config = CampaignConfig(
            seeds=args.seeds, start=args.start, jobs=args.jobs,
            metric=args.metric, plant=args.plant, gen_kwargs=gen_kwargs,
            probes=not args.no_probes, deep=args.deep,
            shrink=not args.no_shrink, cache_dir=cache_dir,
            report_path=args.report, repro_dir=repro_dir,
            time_budget=args.time_budget,
            obs=bool(args.metrics_out or args.trace_out),
            status_interval=args.status_interval or None,
            bounds_backend=args.bounds_backend)

        def progress(verdict):
            if not verdict.ok:
                print(f"FAIL seed {verdict.seed}: [{verdict.oracle}"
                      f"@{verdict.ablation}] {verdict.detail}")

        report = run_campaign(config, progress=progress, status=print)

    summary = report.summary()
    print(f"# checked {summary['seeds']} seeds "
          f"({summary['cache_hits']} cached) in {summary['elapsed_s']}s "
          f"({summary['seeds_per_s']} seeds/s)")
    stages = ", ".join(f"{k} {v}s"
                       for k, v in summary["stage_seconds"].items())
    if stages:
        print(f"# worker time by stage: {stages}")
    for verdict in report.failures:
        repro = report.repro_files.get(verdict.seed)
        shrunk = report.shrunk.get(verdict.seed)
        note = (f" (minimized to {shrunk.gen_kwargs}"
                f" in {shrunk.attempts} attempts)" if shrunk else "")
        print(f"# seed {verdict.seed}: [{verdict.oracle}@{verdict.ablation}]"
              + (f" repro: {repro}" if repro else "") + note)
    if report.failures:
        print(f"# {len(report.failures)} failing seed(s)")
        return 1
    print("# all oracles held")
    return 0


def cmd_serve(args) -> int:
    from repro.serve import DEFAULT_STORE_DIR, ServeConfig, run_server

    store_root = None if args.no_store else (args.store_dir
                                             or DEFAULT_STORE_DIR)
    config = ServeConfig(host=args.host, port=args.port, jobs=args.jobs,
                         queue_depth=args.queue, timeout_s=args.timeout,
                         store_root=store_root,
                         store_max_bytes=args.store_max_mb << 20)
    return run_server(config)


def _export_obs(args) -> None:
    """Write the requested span/metrics exports for a finished command."""
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    if trace_out:
        obs.write_trace(trace_out, obs.span_records())
        print(f"# {len(obs.span_records())} spans written to {trace_out}",
              file=sys.stderr)
    if metrics_out:
        obs.write_metrics_json(metrics_out, obs.snapshot())
        print(f"# metrics written to {metrics_out}", file=sys.stderr)


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    handler = {"bounds": cmd_bounds, "run": cmd_run, "dump": cmd_dump,
               "trace": cmd_trace, "profile": cmd_profile,
               "certify": cmd_certify, "check-cert": cmd_check_cert,
               "fuzz": cmd_fuzz, "serve": cmd_serve}[args.command]
    if getattr(args, "trace_out", None) or getattr(args, "metrics_out", None):
        obs.enable()
    if getattr(args, "bounds_backend", None):
        from repro.logic.bexpr import set_default_backend
        set_default_backend(args.bounds_backend)
    # One uniform error policy for every subcommand: the ReproError
    # hierarchy (parse/type/analysis/derivation/runtime errors) and I/O
    # failures (missing files, unwritable outputs) print a one-line
    # diagnostic and exit 2 — never a raw traceback.  Exports still run
    # on failure: a partial trace is exactly what debugging wants.
    try:
        try:
            return handler(args)
        finally:
            _export_obs(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
