"""Property tests: the binary ASMsz image round-trips exactly.

``decode(encode(P))`` must reproduce the program instruction-for-
instruction (checked by the pretty-printed listing) *and* behavior-for-
behavior (the decoded program runs identically on the machine) — the
bit-level "what you verify is what you run" check.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.asm.encode import MAGIC, decode_program, encode_program
from repro.asm.machine import run_program
from repro.driver import compile_c
from repro.programs.catalog import ALL_RUNNABLE
from repro.programs.loader import load_source
from repro.testing import generate_program

SETTINGS = settings(max_examples=10, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


def roundtrip(compilation):
    image = encode_program(compilation.asm)
    assert image[:4] == MAGIC
    decoded = decode_program(image)
    assert decoded.pretty() == compilation.asm.pretty()
    return decoded


@SETTINGS
@given(st.integers(0, 10_000))
def test_random_program_roundtrip(seed):
    compilation = compile_c(generate_program(seed, max_functions=2,
                                             max_depth=2))
    decoded = roundtrip(compilation)
    original, _m1 = run_program(compilation.asm, fuel=100_000_000)
    reloaded, _m2 = run_program(decoded, fuel=100_000_000)
    assert original == reloaded


@pytest.mark.parametrize("path", ["mibench/bitcount.c", "certikos/proc.c",
                                  "compcert/nbody.c", "recursive/fib.c"])
def test_benchmark_roundtrip(path):
    compilation = compile_c(load_source(path), filename=path)
    decoded = roundtrip(compilation)
    original, m1 = run_program(compilation.asm, fuel=150_000_000)
    reloaded, m2 = run_program(decoded, fuel=150_000_000)
    assert original == reloaded
    assert m1.measured_stack_usage == m2.measured_stack_usage


def test_image_is_compact():
    compilation = compile_c(load_source("mibench/md5.c"))
    image = encode_program(compilation.asm)
    instructions = sum(len(f.body) for f in compilation.asm.functions.values())
    # A fixed-width encoding: a handful of bytes per instruction plus the
    # global images.
    global_bytes = sum(g.size for g in compilation.asm.globals)
    assert len(image) < 16 * instructions + global_bytes + 4096


def test_bad_magic_rejected():
    from repro.asm.encode import EncodingError

    with pytest.raises(EncodingError):
        decode_program(b"NOPE" + b"\x00" * 64)
