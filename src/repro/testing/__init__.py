"""Test support: program generation and the differential campaign engine.

``progen`` generates random well-typed C programs that are safe by
construction (no division by zero, masked array indices, bounded loops),
so every compilation level's behavior must agree and the analyzer's
bounds must dominate the observed trace weights.  ``oracles`` turns that
metatheory into runnable checks, ``campaign`` fans them over a worker
pool with corpus caching and failure shrinking (``python -m repro
fuzz``), and ``shrink`` minimizes failing seeds.  See docs/TESTING.md.
"""

from repro.testing.campaign import (CampaignConfig, CampaignReport,
                                    run_campaign, run_smoke_campaign)
from repro.testing.oracles import (ABLATIONS, OracleViolation, SeedVerdict,
                                   check_seed)
from repro.testing.progen import ProgramGenerator, generate_program
from repro.testing.shrink import ShrinkResult, shrink_failure

__all__ = [
    "ABLATIONS", "CampaignConfig", "CampaignReport", "OracleViolation",
    "ProgramGenerator", "SeedVerdict", "ShrinkResult", "check_seed",
    "generate_program", "run_campaign", "run_smoke_campaign",
    "shrink_failure",
]
