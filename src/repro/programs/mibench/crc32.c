/* MiBench telecomm/CRC32 (adapted).  The standard reflected CRC-32 with
 * the 256-entry table computed at startup (the original ships it as a
 * literal table).  Additional coverage beyond Table 1. */

#define MSG_BYTES 512
#define POLY 0xEDB88320

typedef unsigned int u32;
typedef unsigned char u8;

u32 crc_table[256];
u8 message[MSG_BYTES];
u32 seed = 0xC4C32;

u32 rnd() {
    seed = seed * 1664525 + 1013904223;
    return seed;
}

void crc32_init() {
    u32 i, j, c;
    for (i = 0; i < 256; i++) {
        c = i;
        for (j = 0; j < 8; j++) {
            if (c & 1) {
                c = POLY ^ (c >> 1);
            } else {
                c = c >> 1;
            }
        }
        crc_table[i] = c;
    }
}

u32 crc32_update(u32 crc, u8 byte) {
    return crc_table[(crc ^ byte) & 0xFF] ^ (crc >> 8);
}

u32 crc32_buffer(u8 *buf, u32 len) {
    u32 crc = 0xFFFFFFFF;
    u32 i;
    for (i = 0; i < len; i++) {
        crc = crc32_update(crc, buf[i]);
    }
    return crc ^ 0xFFFFFFFF;
}

int main() {
    u32 i, crc, bitwise, c;
    int j;

    crc32_init();
    for (i = 0; i < MSG_BYTES; i++) message[i] = (u8)(rnd() & 0xFF);
    crc = crc32_buffer(message, MSG_BYTES);
    print_int((int)crc);

    /* Cross-check against the bit-at-a-time definition. */
    bitwise = 0xFFFFFFFF;
    for (i = 0; i < MSG_BYTES; i++) {
        bitwise = bitwise ^ message[i];
        for (j = 0; j < 8; j++) {
            if (bitwise & 1) {
                bitwise = POLY ^ (bitwise >> 1);
            } else {
                bitwise = bitwise >> 1;
            }
        }
    }
    bitwise = bitwise ^ 0xFFFFFFFF;
    c = bitwise;
    return crc == c;
}
