"""Benchmark + regeneration of the paper's Table 2.

"Manually verified stack bounds for C functions": the eight recursive
functions with their symbolic, parametric bounds — checked inductively by
the logic machinery and instantiated with the compiler's cost metric.

    python benchmarks/bench_table2.py
    pytest benchmarks/bench_table2.py --benchmark-only
"""

import pytest

from repro.driver import compile_c
from repro.logic.recursion import check_spec
from repro.programs.loader import load_source
from repro.programs.table2 import TABLE2_PROGRAMS, build_spec_table

# The symbolic presentation of each bound, as Table 2 prints it; the
# concrete coefficients are filled in from the compiled metric.
SYMBOLIC_SHAPE = {
    "recid": "{M}·(a+1) bytes",
    "bsearch": "{M}·(2 + log2(hi-lo)) bytes",
    "fib": "{M}·(n+1) bytes",
    "qsort": "{M}·(hi-lo+1) bytes",
    "filter_pos": "{M}·(hi-lo+1) bytes",
    "sum": "{M}·(hi-lo+1) bytes",
    "fact_sq": "{Mfs} + {Mf}·(1+n^2) bytes",
    "filter_find": "{M}·(hi-lo+1) + {Mb}·(2+log2(BL)) bytes",
}


def check_all_specs():
    table = build_spec_table()
    reports = {}
    for name, spec in table.recursive.items():
        reports[name] = check_spec(spec, table)
    return table, reports


def generate_table2():
    table, _reports = check_all_specs()
    rows = []
    for name, path in TABLE2_PROGRAMS.items():
        compilation = compile_c(load_source(path), filename=path)
        metric = compilation.metric
        own = metric.cost(name)
        shape = SYMBOLIC_SHAPE[name]
        if name == "fact_sq":
            rendered = shape.format(Mfs=own, Mf=metric.cost("fact"))
        elif name == "filter_find":
            rendered = shape.format(M=own, Mb=metric.cost("bsearch"))
        else:
            rendered = shape.format(M=own)
        rows.append((name, rendered))
    return rows


def print_table2(rows):
    print()
    print(f"{'Function Name':18s}  Verified Stack Bound (symbolic, "
          "coefficients from the compiled metric)")
    print("-" * 86)
    for name, rendered in rows:
        print(f"{name:18s}  {rendered}")


@pytest.mark.table
def test_induction_checks(benchmark):
    _table, reports = benchmark(check_all_specs)
    assert set(reports) >= set(TABLE2_PROGRAMS)
    total = sum(r.obligation_checks for r in reports.values())
    benchmark.extra_info["obligation_checks"] = total
    assert total > 10_000


@pytest.mark.table
def test_table2_full(benchmark):
    rows = benchmark.pedantic(generate_table2, rounds=1, iterations=1)
    print_table2(rows)
    assert len(rows) == len(TABLE2_PROGRAMS)


if __name__ == "__main__":
    print_table2(generate_table2())
