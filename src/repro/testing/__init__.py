"""Test support: program generation and the differential campaign engine.

``progen`` generates random well-typed C programs that are safe by
construction (no division by zero, masked array indices, bounded loops),
so every compilation level's behavior must agree and the analyzer's
bounds must dominate the observed trace weights.  ``oracles`` turns that
metatheory into runnable checks, ``campaign`` fans them over a worker
pool with corpus caching and failure shrinking (``python -m repro
fuzz``), ``shrink`` minimizes failing seeds, and ``faults`` holds the
mutation-operator registry plus the detection matrix (``python -m repro
fuzz --mutation-matrix``).  See docs/TESTING.md.
"""

from repro.testing.campaign import (CampaignConfig, CampaignReport,
                                    run_campaign, run_smoke_campaign)
from repro.testing.faults import (FaultOperator, MatrixReport,
                                  OperatorOutcome, UnknownFaultError,
                                  metric_fault_names, operators,
                                  run_mutation_matrix, validate_plant)
from repro.testing.oracles import (ABLATIONS, OracleViolation, SeedVerdict,
                                   check_seed)
from repro.testing.progen import ProgramGenerator, generate_program
from repro.testing.shrink import ShrinkResult, shrink_failure

__all__ = [
    "ABLATIONS", "CampaignConfig", "CampaignReport", "FaultOperator",
    "MatrixReport", "OperatorOutcome", "OracleViolation",
    "ProgramGenerator", "SeedVerdict", "ShrinkResult", "UnknownFaultError",
    "check_seed", "generate_program", "metric_fault_names", "operators",
    "run_campaign", "run_mutation_matrix", "run_smoke_campaign",
    "shrink_failure", "validate_plant",
]
