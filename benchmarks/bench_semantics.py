"""Whole-tower semantics benchmarks: all three execution tiers.

Measures steps/sec of the per-program generated-Python (codegen)
drivers and the pre-decoded threaded-code engines against the legacy
``step()`` machines for each semantic level the tower interprets:

* ``clight``: the full runnable catalog, interleaved best-of-N per
  engine, with the geometric-mean speedup (the acceptance number for
  the execution-engine overhaul);
* ``rtl`` / ``mach``: a representative subset (the deep campaign mode's
  per-ablation cost is dominated by these two).

Run standalone to refresh the committed baseline::

    PYTHONPATH=src python benchmarks/bench_semantics.py [-o BENCH_semantics.json]

CI runs the cheap regression gate only (decoded Clight throughput on one
program against a floor recorded with 2x headroom)::

    PYTHONPATH=src python benchmarks/bench_semantics.py --check-floor
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.clight import semantics as clight_sem
from repro.driver import compile_c
from repro.events.stream import null_sink
from repro.mach import semantics as mach_sem
from repro.programs.catalog import ALL_RUNNABLE
from repro.programs.loader import load_source
from repro.rtl import semantics as rtl_sem

HERE = os.path.dirname(os.path.abspath(__file__))
BASELINE_PATH = os.path.join(HERE, "BENCH_semantics.json")

#: Program for the CI floor check: compiles in seconds, runs long enough
#: (~1M Clight steps) for a stable steps/sec figure.
FLOOR_PROGRAM = "mibench/crc32.c"

#: Subset for the (slower) RTL and Mach comparisons.
DEEP_PROGRAMS = [
    "paper_example.c",
    "mibench/crc32.c",
    "mibench/dijkstra.c",
    "recursive/fib.c",
    "compcert/mandelbrot.c",
]

CLIGHT_FUEL = 5_000_000
INTERP_FUEL = 50_000_000

LEVELS = {
    "clight": (clight_sem, "clight", CLIGHT_FUEL),
    "rtl": (rtl_sem, "rtl", INTERP_FUEL),
    "mach": (mach_sem, "mach", INTERP_FUEL),
}


def _steps_per_s(sem, program, fuel, engine):
    start = time.perf_counter()
    outcome = sem.run_streamed(program, null_sink, fuel=fuel,
                               engine=engine)
    elapsed = time.perf_counter() - start
    assert outcome.converged, outcome
    return outcome.steps / elapsed, outcome.steps


def _bench_level(level, programs, repeats):
    sem, attr, fuel = LEVELS[level]
    out = {}
    ratios = []
    for path in programs:
        compilation = compile_c(load_source(path), filename=path)
        program = getattr(compilation, attr)
        # Interleave the engines so cache/frequency drift hits all three.
        best_legacy = best_decoded = best_codegen = 0.0
        steps = 0
        for _ in range(repeats):
            legacy, steps = _steps_per_s(sem, program, fuel, "legacy")
            decoded, _ = _steps_per_s(sem, program, fuel, "decoded")
            codegen, _ = _steps_per_s(sem, program, fuel, "codegen")
            best_legacy = max(best_legacy, legacy)
            best_decoded = max(best_decoded, decoded)
            best_codegen = max(best_codegen, codegen)
        speedup = best_decoded / best_legacy
        ratios.append(speedup)
        out[path] = {
            "steps": steps,
            "legacy_steps_per_s": round(best_legacy),
            "decoded_steps_per_s": round(best_decoded),
            "codegen_steps_per_s": round(best_codegen),
            "speedup": round(speedup, 2),
            "codegen_vs_decoded": round(best_codegen / best_decoded, 2),
            "codegen_vs_legacy": round(best_codegen / best_legacy, 2),
        }
        print(f"  {path:28s} {steps:>9d} steps  "
              f"legacy {best_legacy:>10,.0f}/s  "
              f"decoded {best_decoded:>10,.0f}/s  "
              f"codegen {best_codegen:>10,.0f}/s  {speedup:.2f}x")
    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    out["geomean_speedup"] = round(geomean, 2)
    print(f"  {level} geomean speedup: {geomean:.2f}x "
          f"(min {min(ratios):.2f}x, max {max(ratios):.2f}x)")
    return out


def check_floor() -> int:
    with open(BASELINE_PATH) as handle:
        baseline = json.load(handle)
    floor = baseline["floor_clight_steps_per_s"]
    compilation = compile_c(load_source(FLOOR_PROGRAM),
                            filename=FLOOR_PROGRAM)
    # Best of three: CI machines are noisy and the gate only needs to
    # catch real regressions (the floor already has 2x headroom).
    best = max(_steps_per_s(clight_sem, compilation.clight, CLIGHT_FUEL,
                            "decoded")[0]
               for _ in range(3))
    print(f"decoded Clight throughput on {FLOOR_PROGRAM}: "
          f"{best:,.0f} steps/s (floor {floor:,} steps/s)")
    if best < floor:
        print("FAIL: decoded Clight interpreter throughput regressed "
              "below the checked-in floor", file=sys.stderr)
        return 1
    print("OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-o", "--output", default=BASELINE_PATH,
                        help="where to write the JSON baseline")
    parser.add_argument("--repeats", type=int, default=3,
                        help="interleaved best-of-N per engine")
    parser.add_argument("--check-floor", action="store_true",
                        help="only verify decoded Clight throughput "
                             "against the committed floor (CI mode)")
    args = parser.parse_args(argv)

    if args.check_floor:
        return check_floor()

    results = {
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    print("clight: decoded vs legacy steps/sec (full catalog)")
    results["clight"] = _bench_level("clight", ALL_RUNNABLE, args.repeats)
    print("rtl: decoded vs legacy steps/sec")
    results["rtl"] = _bench_level("rtl", DEEP_PROGRAMS, args.repeats)
    print("mach: decoded vs legacy steps/sec")
    results["mach"] = _bench_level("mach", DEEP_PROGRAMS, args.repeats)

    floor_decoded = results["clight"][FLOOR_PROGRAM]["decoded_steps_per_s"]
    results["floor_program"] = FLOOR_PROGRAM
    results["floor_clight_steps_per_s"] = floor_decoded // 2  # 2x headroom

    with open(args.output, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
