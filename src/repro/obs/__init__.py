"""``repro.obs``: zero-dependency pipeline observability.

Span-based tracing plus a metrics registry, wired through every layer of
the reproduction (compiler passes, the four decoded interpreters, the
stack analyzer, the certificate checker, the differential campaign).
The design contract:

* **Off by default, off means free.**  ``obs.enabled`` is a module
  attribute; instrumented hot paths guard on it, and everything else
  goes through :func:`span`, which hands back a shared no-op object
  while disabled.  No per-interpreter-step work is ever added — run
  loops are only wrapped at their entry points — so the disabled
  overhead on ``benchmarks/bench_interp.py`` is under the 2% budget
  recorded in ``docs/PERFORMANCE.md``.
* **One process, one recorder/registry; merge across processes.**
  Campaign workers drain per-seed deltas (:func:`drain_metrics`,
  :func:`drain_spans`) that the parent folds back in (:func:`merge`,
  :func:`adopt_spans`), so ``python -m repro fuzz --jobs N
  --metrics-out m.json`` reports pool-wide aggregates.
* **Schema'd exports.**  ``--trace-out`` writes span JSONL or a Chrome
  ``chrome://tracing`` trace, ``--metrics-out`` writes a metrics
  snapshot with derived rates; both formats are validated by
  ``tests/unit/test_obs_schema.py`` against the executable schema in
  :mod:`repro.obs.export`.  See ``docs/OBSERVABILITY.md``.

Typical instrumentation::

    from repro import obs

    with obs.span("analyze.auto", functions=len(order)) as sp:
        ...
        sp.set(bound=bound)
    obs.add("interp.asm.steps", machine.steps)
"""

from __future__ import annotations

from functools import wraps
from typing import Optional, Sequence

from repro.obs.export import (write_chrome_trace, write_metrics_json,
                              write_spans_jsonl, write_trace)
from repro.obs.metrics import (DEFAULT_LATENCY_BUCKETS_S, METRICS_SCHEMA,
                               MetricsRegistry, derive_rates, empty_snapshot,
                               merge_snapshots)
from repro.obs.spans import NULL_SPAN, SPAN_SCHEMA, Span, SpanRecorder

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_S", "METRICS_SCHEMA", "NULL_SPAN",
    "SPAN_SCHEMA", "MetricsRegistry", "Span", "SpanRecorder", "add",
    "adopt_spans", "derive_rates", "disable", "drain_metrics",
    "drain_spans", "empty_snapshot", "enable", "enabled", "merge",
    "merge_snapshots", "observe", "reset", "set_gauge", "snapshot",
    "span", "span_records", "traced", "write_chrome_trace",
    "write_metrics_json", "write_spans_jsonl", "write_trace",
]

#: The master switch.  Instrumented modules read this attribute directly
#: (``if obs.enabled:``); it is False unless :func:`enable` was called.
enabled = False

recorder = SpanRecorder()
registry = MetricsRegistry()


def enable() -> None:
    """Turn instrumentation on for this process."""
    global enabled
    enabled = True


def disable() -> None:
    global enabled
    enabled = False


def reset() -> None:
    """Clear every recorded span and metric (state stays enabled/disabled)."""
    recorder.clear()
    registry.clear()


# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------


def span(name: str, **attrs):
    """A context manager timing one named region (no-op while disabled)."""
    if not enabled:
        return NULL_SPAN
    return recorder.span(name, attrs)


def traced(name: str, **attrs):
    """Decorator form of :func:`span` for whole-function regions."""
    def decorate(function):
        @wraps(function)
        def wrapper(*args, **kwargs):
            if not enabled:
                return function(*args, **kwargs)
            with recorder.span(name, attrs):
                return function(*args, **kwargs)
        return wrapper
    return decorate


def span_records() -> list[dict]:
    """The finished span records of this process (plus adopted ones)."""
    return recorder.records


def adopt_spans(records: list[dict]) -> None:
    recorder.adopt(records)


def drain_spans() -> list[dict]:
    return recorder.drain()


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


def add(name: str, value: float = 1) -> None:
    """Increment a counter (no-op while disabled)."""
    if enabled:
        registry.add(name, value)


def set_gauge(name: str, value: float) -> None:
    if enabled:
        registry.set_gauge(name, value)


def observe(name: str, value: float,
            buckets: Optional[Sequence[float]] = None) -> None:
    """Record one histogram observation (no-op while disabled)."""
    if enabled:
        registry.observe(name, value, buckets)


def drain_metrics() -> dict:
    return registry.drain()


def merge(snap: dict) -> None:
    registry.merge(snap)


def snapshot() -> dict:
    """The process-wide metrics snapshot, external caches included.

    On top of the live registry this folds in the stats counters other
    subsystems already keep — the ``bexpr`` normal-form memo — as
    gauges, so one export carries every cache-hit-rate the perf docs
    talk about.
    """
    snap = registry.snapshot()
    try:
        from repro.logic.bexpr import nf_cache_stats

        stats = nf_cache_stats()
        if stats["hits"] or stats["misses"]:
            snap["gauges"]["bexpr.nf.hits"] = stats["hits"]
            snap["gauges"]["bexpr.nf.misses"] = stats["misses"]
    except Exception:  # never let a stats source break an export
        pass
    return snap
