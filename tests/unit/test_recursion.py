"""Unit tests for recursive specs and the induction checker."""

import pytest

from repro.errors import DerivationError
from repro.events.metrics import StackMetric
from repro.logic.bexpr import BMul, badd, bconst, bmetric, bparam
from repro.logic.recursion import (CallObligation, RecursiveSpec, SpecTable,
                                   check_spec, check_table)
from repro.programs.table2 import build_spec_table


def linear_spec(name="f", factor_extra=0):
    bound = BMul(badd(bparam("n"), bconst(factor_extra)), bmetric(name))
    def obligations(p):
        if p["n"] <= 0:
            return []
        return [CallObligation(name, {"n": p["n"] - 1})]
    return RecursiveSpec(name, ["n"], bound, obligations,
                         domain={"n": range(0, 100)})


class TestInduction:
    def test_linear_spec_checks(self):
        table = SpecTable()
        spec = linear_spec()
        table.add_recursive(spec)
        report = check_spec(spec, table)
        assert report.instances == 100
        assert report.obligation_checks == 99

    def test_too_small_bound_rejected(self):
        # P(n) = M(f) is not inductive for linear recursion.
        bound = bmetric("f")
        def obligations(p):
            return [CallObligation("f", {"n": p["n"] - 1})] if p["n"] else []
        spec = RecursiveSpec("f", ["n"], bound, obligations,
                             domain={"n": range(0, 10)})
        table = SpecTable()
        table.add_recursive(spec)
        with pytest.raises(DerivationError):
            check_spec(spec, table)

    def test_off_by_one_rejected(self):
        # P(n) = (n-1) * M fails at the call from n=1 to n=0... actually
        # at every n: P(n) >= M + P(n-1) iff n-1 >= 1 + n-2, which holds;
        # make it genuinely wrong: callee argument stays n.
        bound = BMul(bparam("n"), bmetric("f"))
        def obligations(p):
            return [CallObligation("f", {"n": p["n"]})] if p["n"] else []
        spec = RecursiveSpec("f", ["n"], bound, obligations,
                             domain={"n": range(0, 10)})
        table = SpecTable()
        table.add_recursive(spec)
        with pytest.raises(DerivationError):
            check_spec(spec, table)

    def test_empty_domain_rejected(self):
        # An empty verification domain would make the induction pass
        # vacuously — the checker must refuse, not "succeed".
        spec = RecursiveSpec("f", ["n"], bmetric("f"),
                             lambda p: [], domain={"n": []})
        table = SpecTable()
        table.add_recursive(spec)
        with pytest.raises(DerivationError, match="empty verification"):
            check_spec(spec, table)

    def test_missing_domain_rejected(self):
        spec = RecursiveSpec("f", ["n"], bmetric("f"),
                             lambda p: [], domain={})
        table = SpecTable()
        table.add_recursive(spec)
        with pytest.raises(DerivationError, match="no verification domain"):
            check_spec(spec, table)

    def test_missing_callee_spec_rejected(self):
        spec = RecursiveSpec(
            "f", ["n"], bmetric("f"),
            lambda p: [CallObligation("helper", {})],
            domain={"n": range(0, 3)})
        table = SpecTable()
        table.add_recursive(spec)
        with pytest.raises(DerivationError):
            check_spec(spec, table)

    def test_ground_callee_composes(self):
        table = SpecTable()
        table.add_ground("helper", bmetric("inner"))
        spec = RecursiveSpec(
            "f", ["n"],
            badd(bmetric("helper"), bmetric("inner")),
            lambda p: [CallObligation("helper", {})],
            domain={"n": range(0, 3)})
        table.add_recursive(spec)
        check_spec(spec, table)

    def test_total_bound_adds_own_frame(self):
        spec = linear_spec()
        metric = StackMetric({"f": 10})
        assert spec.total_bytes(metric, {"n": 4}) == 50

    def test_fun_spec_export(self):
        spec = linear_spec()
        fun_spec = spec.fun_spec()
        assert fun_spec.params == ["n"]


class TestTable2Specs:
    @pytest.fixture(scope="class")
    def table(self):
        return build_spec_table()

    def test_all_specs_check(self, table):
        reports = check_table(table)
        assert set(reports) == {"recid", "bsearch", "fib", "qsort", "sum",
                                "filter_pos", "fact", "fact_sq",
                                "filter_find"}
        for report in reports.values():
            assert report.instances > 0

    def test_bsearch_is_logarithmic(self, table):
        spec = table.recursive["bsearch"]
        metric = StackMetric({"bsearch": 40})
        # Paper shape: 40 * (2 + log2 n); doubling n adds one frame.
        at_1024 = spec.total_bytes(metric, {"n": 1024})
        at_2048 = spec.total_bytes(metric, {"n": 2048})
        assert at_2048 - at_1024 == 40
        assert at_1024 == 40 * (2 + 10)

    def test_recid_is_linear(self, table):
        spec = table.recursive["recid"]
        metric = StackMetric({"recid": 8})
        assert spec.total_bytes(metric, {"n": 10}) - \
            spec.total_bytes(metric, {"n": 9}) == 8

    def test_fact_sq_is_quadratic(self, table):
        spec = table.recursive["fact_sq"]
        metric = StackMetric({"fact_sq": 16, "fact": 24})
        # M(fact_sq) + M(fact) * (1 + n^2)
        assert spec.total_bytes(metric, {"n": 10}) == 16 + 24 * 101

    def test_filter_find_composes_bsearch(self, table):
        spec = table.recursive["filter_find"]
        metric = StackMetric({"filter_find": 48, "bsearch": 40})
        total = spec.total_bytes(metric, {"n": 10, "bl": 256})
        # 48*(10+1) + 40*(2+8)
        assert total == 48 * 11 + 40 * 10

    def test_spec_table_closed_under_obligations(self, table):
        for spec in table.recursive.values():
            sample = {name: values[0]
                      for name, values in spec.domain.items()}
            for obligation in spec.obligations(
                    {k: max(v) for k, v in spec.domain.items()}):
                table.callee_bound(obligation.callee, obligation.args)
            del sample
