"""Executable quantitative-refinement checks (paper §3.1).

The paper proves, in Coq, that every compiler pass ``C`` satisfies
``C(s) <=_Q s``: each target behavior ``B'`` is matched by a source
behavior ``B`` with the same pruned trace and ``W_M(B') <= W_M(B)`` for
*all* stack metrics ``M``.  A Python reproduction cannot quantify over all
behaviors, so this module provides the per-execution judgment used by the
differential test-suite: given one observed target behavior and one observed
source behavior (driven by the same inputs), check the refinement
conditions.

Two flavours of the weight condition are offered:

* :func:`check_quantitative_refinement` with an explicit metric checks
  ``W_M(B') <= W_M(B)`` for that metric — this is what Theorem 1 consumes
  (with the compiler-produced metric).
* :func:`dominates_for_all_metrics` checks a *sufficient* structural
  condition for the all-metrics statement: every prefix of the target trace
  is pointwise dominated (per-function open-call counts) by some prefix of
  the source trace.  Our passes up to Mach preserve memory events exactly,
  so in practice the check degenerates to trace equality there; the general
  form matters for passes that are allowed to drop or reorder memory events
  (e.g. tail-call recognition, discussed in the paper's TR).
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.events.trace import (
    Behavior,
    Converges,
    Event,
    GoesWrong,
    open_calls,
    prefixes,
    weight,
)


class RefinementFailure(AssertionError):
    """Raised when an observed pair of behaviors violates refinement."""


def check_refinement(target: Behavior, source: Behavior) -> None:
    """CompCert's classic refinement on one behavior pair.

    The pruned traces must agree, and if both converge the return codes
    must agree.  A wrong source behavior licenses anything (the theorem's
    ``fail(t)`` escape hatch), so it is accepted outright.
    """
    if isinstance(source, GoesWrong):
        return
    if isinstance(target, GoesWrong):
        raise RefinementFailure(
            f"target goes wrong ({target.reason}) but source does not"
        )
    pruned_target = target.pruned()
    pruned_source = source.pruned()
    if pruned_target.trace != pruned_source.trace:
        raise RefinementFailure(
            "pruned traces differ:\n"
            f"  target: {list(pruned_target.trace)}\n"
            f"  source: {list(pruned_source.trace)}"
        )
    if isinstance(target, Converges) != isinstance(source, Converges):
        raise RefinementFailure(
            f"termination differs: target {type(target).__name__}, "
            f"source {type(source).__name__}"
        )
    if isinstance(target, Converges) and isinstance(source, Converges):
        if target.return_code != source.return_code:
            raise RefinementFailure(
                f"return codes differ: target {target.return_code}, "
                f"source {source.return_code}"
            )


def check_quantitative_refinement(
    target: Behavior,
    source: Behavior,
    metric: Callable[[Event], int] | None = None,
) -> None:
    """One-execution quantitative refinement: ``<=_Q`` on a behavior pair.

    Checks classic refinement plus the weight inequality.  With an explicit
    ``metric`` the inequality is checked for that metric; without one, the
    structural all-metrics condition is checked.
    """
    if isinstance(source, GoesWrong):
        return
    check_refinement(target, source)
    if metric is not None:
        weight_target = weight(metric, target)
        weight_source = weight(metric, source)
        if weight_target > weight_source:
            raise RefinementFailure(
                f"weight increased: target {weight_target} > source {weight_source}"
            )
    else:
        if not dominates_for_all_metrics(target.trace, source.trace):
            raise RefinementFailure(
                "target trace is not pointwise dominated by the source trace; "
                "the all-metrics weight inequality cannot be established"
            )


def dominates_for_all_metrics(
    target_trace: Sequence[Event], source_trace: Sequence[Event]
) -> bool:
    """Sufficient condition for ``forall M. W_M(target) <= W_M(source)``.

    For stack metrics, ``V_M(t) = sum_f M(f) * open_f(t)`` where ``open_f``
    counts unmatched calls.  If every prefix of the target trace has its
    open-call vector pointwise below the open-call vector of *some* prefix
    of the source trace, then for every metric the target valuation is
    bounded by a source valuation, hence ``W_M(target) <= W_M(source)``.
    """
    source_vectors = [open_calls(prefix) for prefix in prefixes(source_trace)]
    for target_prefix in prefixes(target_trace):
        target_vector = open_calls(target_prefix)
        if not any(
            _pointwise_le(target_vector, source_vector)
            for source_vector in source_vectors
        ):
            return False
    return True


def _pointwise_le(small: dict[str, int], large: dict[str, int]) -> bool:
    # Compare over the union of keys: arbitrary traces can have *negative*
    # open-call counts (unmatched returns), and a negative count present
    # only on the large side lowers its valuation.
    for function in small.keys() | large.keys():
        if small.get(function, 0) > large.get(function, 0):
            return False
    return True
