"""Property-based tests for the bound-expression language.

The central property: the exact max-plus comparator agrees with pointwise
evaluation on arbitrary metrics — soundness *and* completeness of the
decision procedure on the ground fragment.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.bexpr import (BConst, BFrameDiff, BScale, badd, bmax,
                               bmetric, bound_le, evaluate,
                               find_violation_metric, fold_with_params,
                               maxplus_normal_form)

ATOMS = ("f", "g", "h")


@st.composite
def ground_bounds(draw, depth=3):
    if depth == 0 or draw(st.booleans()):
        if draw(st.booleans()):
            return BConst(draw(st.integers(0, 100)))
        return bmetric(draw(st.sampled_from(ATOMS)))
    kind = draw(st.integers(0, 2))
    left = draw(ground_bounds(depth=depth - 1))
    right = draw(ground_bounds(depth=depth - 1))
    if kind == 0:
        return badd(left, right)
    if kind == 1:
        return bmax(left, right)
    return BScale(draw(st.integers(0, 4)), left)


@st.composite
def metric_dicts(draw):
    return {name: draw(st.integers(0, 50)) for name in ATOMS}


class TestNormalFormSemantics:
    @given(ground_bounds(), metric_dicts())
    def test_normal_form_preserves_evaluation(self, bound, metric):
        terms = maxplus_normal_form(bound)
        def term_value(term):
            const, atoms = term
            return const + sum(metric[name] * mult for name, mult in atoms)
        normalized = max(term_value(t) for t in terms)
        assert normalized == evaluate(bound, metric)

    @given(ground_bounds())
    def test_normal_form_deterministic(self, bound):
        assert maxplus_normal_form(bound) == maxplus_normal_form(bound)


class TestComparatorSoundnessCompleteness:
    @settings(max_examples=200)
    @given(ground_bounds(), ground_bounds(), metric_dicts())
    def test_le_sound(self, a, b, metric):
        """If the comparator says a <= b, evaluation never contradicts."""
        if bound_le(a, b).holds:
            assert evaluate(a, metric) <= evaluate(b, metric)

    @settings(max_examples=100)
    @given(ground_bounds(), ground_bounds())
    def test_le_refusals_have_witnesses(self, a, b):
        """Every refusal of the comparator is certified by evaluation: a
        concrete metric on which ``a > b`` (extracted from the failure
        polyhedron by Fourier–Motzkin back-substitution)."""
        result = bound_le(a, b)
        if result.holds:
            return
        metric = find_violation_metric(a, b)
        assert metric is not None, (a, b)
        full = {name: 0 for name in ATOMS}
        full.update(metric)
        assert evaluate(a, full) > evaluate(b, full), (a, b, full)

    def test_le_case_split_completeness(self):
        """Inequalities needing a case split over the metric are decided
        (the termwise check alone refuses them); regression for a latent
        incompleteness found by hypothesis."""
        f, g = bmetric("f"), bmetric("g")
        # M(f)+1 <= max(2*M(f), 1): take 1 at M(f)=0, 2*M(f) otherwise.
        assert bound_le(badd(f, BConst(1)), bmax(badd(f, f), BConst(1))).holds
        # Same shape over two atoms.
        assert bound_le(badd(f, g, BConst(1)),
                        bmax(badd(f, f, g, g), BConst(1))).holds
        # A genuine violation in a narrow window (M(f)=2..4) is refused
        # and certified.
        a = badd(f, BConst(4))
        b = bmax(badd(f, f), BConst(5))
        assert not bound_le(a, b).holds
        witness = find_violation_metric(a, b)
        assert witness is not None and evaluate(a, witness) > \
            evaluate(b, witness)

    @given(ground_bounds())
    def test_le_reflexive(self, a):
        assert bound_le(a, a).holds

    @given(ground_bounds(), ground_bounds())
    def test_le_join(self, a, b):
        joined = bmax(a, b)
        assert bound_le(a, joined).holds
        assert bound_le(b, joined).holds

    @given(ground_bounds(), ground_bounds(), ground_bounds())
    def test_le_transitive(self, a, b, c):
        if bound_le(a, b).holds and bound_le(b, c).holds:
            assert bound_le(a, c).holds

    @given(ground_bounds(), ground_bounds())
    def test_add_monotone(self, a, b):
        assert bound_le(a, badd(a, b)).holds


class TestFrameDiff:
    @given(ground_bounds(), ground_bounds(), metric_dicts())
    def test_frame_identity(self, part, other, metric):
        """part + (total - part) evaluates to total when part <= total."""
        total = bmax(part, other)
        framed = badd(part, BFrameDiff(total, part))
        assert evaluate(framed, metric) == evaluate(total, metric)

    @given(ground_bounds(), ground_bounds())
    def test_frame_rewrite_exact(self, part, other):
        from repro.logic.bexpr import bound_equal

        total = bmax(part, other)
        framed = badd(part, BFrameDiff(total, part))
        result = bound_equal(framed, total)
        assert result.holds and result.exact
