"""Ablation benchmark: how design choices move the verified bounds.

DESIGN.md calls out three load-bearing backend choices; this bench
quantifies each on the benchmark suite:

* **register allocation** — with coloring disabled (every virtual
  register spilled), frames and hence bounds inflate substantially; this
  is exactly why source-level reasoning must stay parametric in the
  metric until compilation fixes it;
* **constant propagation + dead-code elimination** — shrink live ranges
  and spill counts, shrinking frames;
* the bounds remain *sound* in every configuration: each variant's
  program is re-measured under its own metric.

    python benchmarks/bench_ablation_passes.py
    pytest benchmarks/bench_ablation_passes.py --benchmark-only
"""

import pytest

from repro.analyzer import StackAnalyzer
from repro.driver import CompilerOptions, compile_c
from repro.measure import measure_compilation
from repro.programs.loader import load_source

PROGRAMS = ["mibench/bitcount.c", "mibench/md5.c", "certikos/proc.c"]

CONFIGS = {
    "default": CompilerOptions(),
    "no-opt": CompilerOptions(constprop=False, deadcode=False),
    "cse": CompilerOptions(cse=True),
    "spill-all": CompilerOptions(spill_everything=True),
}


def ablation_row(path):
    source = load_source(path)
    row = {"path": path}
    for config_name, options in CONFIGS.items():
        compilation = compile_c(source, filename=path, options=options)
        analysis = StackAnalyzer(compilation.clight).analyze()
        bound = analysis.bound_bytes("main", compilation.metric)
        run = measure_compilation(compilation, fuel=200_000_000)
        assert run.converged
        assert run.measured_bytes <= bound - 4  # soundness in every config
        row[config_name] = bound
    return row


def generate_rows():
    return [ablation_row(path) for path in PROGRAMS]


def print_rows(rows):
    print()
    names = list(CONFIGS)
    header = "  ".join(f"{name:>10s}" for name in names)
    print(f"{'File':24s}  {header}   (verified bound for main, bytes)")
    print("-" * 70)
    for row in rows:
        values = "  ".join(f"{row[name]:10d}" for name in names)
        print(f"{row['path']:24s}  {values}")


@pytest.mark.table
@pytest.mark.parametrize("path", PROGRAMS)
def test_ablation(benchmark, path):
    row = benchmark.pedantic(ablation_row, args=(path,), rounds=1,
                             iterations=1)
    # Spilling everything can only inflate bounds.  The value-level
    # optimizations cut instruction counts but can move bounds in either
    # direction: CSE in particular *lengthens live ranges*, and a value
    # held across a call must be spilled, so frames (hence bounds) may
    # grow — an instructive, real compiler trade-off the table exposes.
    assert row["spill-all"] >= row["default"]
    assert row["spill-all"] >= row["no-opt"]


if __name__ == "__main__":
    print_rows(generate_rows())
