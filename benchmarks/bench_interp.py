"""Interpreter / frontend / bounds-algebra performance benchmarks.

Measures the three hot paths the execution-engine overhaul targets:

* ``interpreter``: steps/sec of all three execution tiers — the legacy
  isinstance-chain step loop, the pre-decoded closure engine and the
  per-program generated-Python (codegen) tier — per catalog program;
* ``frontend``: compiling one generated seed at every campaign ablation
  point with and without frontend sharing;
* ``nf_memo``: normal-form memoization hit rate and the bound_le-heavy
  derivation re-check with the memo on/off;
* ``campaign``: cold 8-seed differential campaign wall-clock, old
  configuration (legacy interpreter, per-ablation frontend, no memo) vs.
  new.

Run standalone to refresh the committed baseline::

    PYTHONPATH=src python benchmarks/bench_interp.py [-o BENCH_interp.json]

CI runs the cheap regression gate only::

    PYTHONPATH=src python benchmarks/bench_interp.py --check-floor
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.asm import machine as machine_mod
from repro.asm.machine import run_program
from repro import driver
from repro.driver import compile_c, compile_clight, compile_frontend
from repro.events.trace import Converges
from repro.logic import bexpr
from repro.programs.loader import load_source
from repro.rtl import constprop
from repro.testing import oracles
from repro.testing.progen import generate_program

HERE = os.path.dirname(os.path.abspath(__file__))
BASELINE_PATH = os.path.join(HERE, "BENCH_interp.json")

#: Program for the CI floor check: small enough to compile in seconds,
#: long-running enough (~220k steps) for a stable steps/sec figure.
FLOOR_PROGRAM = "mibench/crc32.c"

INTERP_PROGRAMS = [
    "mibench/crc32.c",
    "mibench/dijkstra.c",
    "recursive/fib.c",
    "compcert/mandelbrot.c",   # the catalog's longest-running program
]

FUEL = 150_000_000


def _run_steps_per_s(asm, engine: str) -> tuple[float, int]:
    start = time.perf_counter()
    behavior, machine = run_program(asm, fuel=FUEL, engine=engine)
    elapsed = time.perf_counter() - start
    assert isinstance(behavior, Converges), behavior
    return machine.steps / elapsed, machine.steps


def bench_interpreter() -> dict:
    from repro.asm import codegen as asm_codegen

    out = {}
    for path in INTERP_PROGRAMS:
        compilation = compile_c(load_source(path), filename=path)
        # Warm the per-program compile so the codegen column measures the
        # steady state (the serving daemon's and campaign's hot path).
        asm_codegen.codegen_program(compilation.asm)
        legacy, steps = _run_steps_per_s(compilation.asm, "legacy")
        decoded, _ = _run_steps_per_s(compilation.asm, "decoded")
        codegen, _ = _run_steps_per_s(compilation.asm, "codegen")
        out[path] = {
            "steps": steps,
            "legacy_steps_per_s": round(legacy),
            "decoded_steps_per_s": round(decoded),
            "codegen_steps_per_s": round(codegen),
            "speedup": round(decoded / legacy, 2),
            "codegen_vs_decoded": round(codegen / decoded, 2),
            "codegen_vs_legacy": round(codegen / legacy, 2),
        }
        print(f"  {path:28s} {steps:>9d} steps  "
              f"legacy {legacy:>10,.0f}/s  decoded {decoded:>10,.0f}/s  "
              f"codegen {codegen:>10,.0f}/s  "
              f"({codegen / decoded:.1f}x/{codegen / legacy:.1f}x)")
    return out


def bench_frontend() -> dict:
    source = generate_program(1)
    options = list(oracles.ABLATIONS.values())
    driver.configure_frontend_cache(False)

    start = time.perf_counter()
    for opts in options:
        compile_c(source, filename="seed1.c", options=opts)
    unshared = time.perf_counter() - start

    start = time.perf_counter()
    clight = compile_frontend(source, filename="seed1.c")
    for opts in options:
        compile_clight(clight, options=opts)
    shared = time.perf_counter() - start
    driver.configure_frontend_cache(True)

    print(f"  {len(options)} ablations: unshared {unshared * 1000:.0f} ms, "
          f"shared frontend {shared * 1000:.0f} ms "
          f"({unshared / shared:.1f}x)")
    return {
        "ablations": len(options),
        "unshared_s": round(unshared, 4),
        "shared_s": round(shared, 4),
        "speedup": round(unshared / shared, 2),
    }


def _analyze_and_check(path: str) -> None:
    from repro.analyzer import StackAnalyzer

    compilation = compile_c(load_source(path), filename=path)
    analysis = StackAnalyzer(compilation.clight).analyze()
    report = analysis.check()
    assert report.fully_exact


def bench_nf_memo() -> dict:
    path = "certikos/vmm.c"
    bexpr.configure_memoization(False)
    start = time.perf_counter()
    _analyze_and_check(path)
    unmemoized = time.perf_counter() - start

    bexpr.configure_memoization(True)
    bexpr.reset_nf_cache_stats()
    start = time.perf_counter()
    _analyze_and_check(path)
    memoized = time.perf_counter() - start
    stats = bexpr.nf_cache_stats()

    print(f"  {path}: analyze+check {unmemoized * 1000:.0f} ms unmemoized, "
          f"{memoized * 1000:.0f} ms memoized "
          f"(hit rate {stats['hit_rate']:.0%})")
    return {
        "program": path,
        "unmemoized_s": round(unmemoized, 4),
        "memoized_s": round(memoized, 4),
        "speedup": round(unmemoized / memoized, 2),
        "nf_hits": stats["hits"],
        "nf_misses": stats["misses"],
        "hit_rate": round(stats["hit_rate"], 4),
    }


def _campaign(seeds: range) -> float:
    start = time.perf_counter()
    for seed in seeds:
        verdict = oracles.check_seed(seed)
        assert verdict.ok, f"seed {seed}: {verdict.detail}"
    return time.perf_counter() - start


def bench_campaign(seeds: range = range(8)) -> dict:
    # "Old" configuration: legacy step loop, reference dataflow solver,
    # no bounds memoization, and a frontend re-run per ablation point
    # (what compile_c-per-ablation did before the shared frontend).
    machine_mod.DEFAULT_DECODED = False
    constprop.FUSED_MERGE = False
    bexpr.configure_memoization(False)
    driver.configure_frontend_cache(False)
    saved_frontend = oracles.compile_frontend
    saved_backend = oracles.compile_clight
    oracles.compile_frontend = lambda source, filename="<string>": \
        (source, filename)
    oracles.compile_clight = lambda pair, options=None: \
        compile_c(pair[0], filename=pair[1], options=options)
    try:
        old = _campaign(seeds)
    finally:
        oracles.compile_frontend = saved_frontend
        oracles.compile_clight = saved_backend
        machine_mod.DEFAULT_DECODED = True
        constprop.FUSED_MERGE = True
        bexpr.configure_memoization(True)
        driver.configure_frontend_cache(True)

    new = _campaign(seeds)
    print(f"  {len(seeds)} cold seeds: old {old:.1f} s, new {new:.1f} s "
          f"({old / new:.1f}x)")
    return {
        "seeds": len(seeds),
        "old_s": round(old, 2),
        "new_s": round(new, 2),
        "speedup": round(old / new, 2),
    }


def check_floor() -> int:
    with open(BASELINE_PATH) as handle:
        baseline = json.load(handle)
    floor = baseline["floor_steps_per_s"]
    compilation = compile_c(load_source(FLOOR_PROGRAM),
                            filename=FLOOR_PROGRAM)
    # Best of three: CI machines are noisy and the gate only needs to
    # catch real regressions (the floor already has 2x headroom).
    best = max(_run_steps_per_s(compilation.asm, "decoded")[0]
               for _ in range(3))
    print(f"decoded throughput on {FLOOR_PROGRAM}: {best:,.0f} steps/s "
          f"(floor {floor:,} steps/s)")
    if best < floor:
        print("FAIL: decoded interpreter throughput regressed below the "
              "checked-in floor", file=sys.stderr)
        return 1
    print("OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-o", "--output", default=BASELINE_PATH,
                        help="where to write the JSON baseline")
    parser.add_argument("--check-floor", action="store_true",
                        help="only verify decoded throughput against the "
                             "committed floor (CI mode)")
    parser.add_argument("--seeds", type=int, default=8,
                        help="campaign size for the cold-campaign bench")
    args = parser.parse_args(argv)

    if args.check_floor:
        return check_floor()

    results = {
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    print("interpreter: decoded vs legacy steps/sec")
    results["interpreter"] = bench_interpreter()
    print("frontend: shared vs per-ablation compilation")
    results["frontend"] = bench_frontend()
    print("bounds algebra: normal-form memoization")
    results["nf_memo"] = bench_nf_memo()
    print("campaign: cold seeds, old vs new configuration")
    results["campaign"] = bench_campaign(range(args.seeds))

    # CI floor: half the decoded throughput measured on the floor program
    # (the "generous 2x headroom" of the perf-smoke gate).
    decoded = results["interpreter"][FLOOR_PROGRAM]["decoded_steps_per_s"]
    results["floor_program"] = FLOOR_PROGRAM
    results["floor_steps_per_s"] = decoded // 2

    with open(args.output, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"baseline written to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
