/* Table 2: qsort — recursive quicksort (from the CompCert test suite).
 * Worst-case recursion depth is hi - lo, so the verified bound is
 * (hi - lo) * M(qsort) bytes. */

#ifndef N
#define N 100
#endif

typedef unsigned int u32;
int tab[N];
u32 seed = 29;

u32 rnd() {
    seed = seed * 1664525 + 1013904223;
    return seed;
}

void qsort(int lo, int hi) {
    int i, j, pivot, tmp;
    if (hi - lo <= 1) return;
    pivot = tab[lo];
    i = lo;
    j = hi;
    while (1) {
        i = i + 1;
        while (i < hi && tab[i] < pivot) i = i + 1;
        j = j - 1;
        while (j > lo && tab[j] > pivot) j = j - 1;
        if (i >= j) break;
        tmp = tab[i]; tab[i] = tab[j]; tab[j] = tmp;
    }
    tmp = tab[lo]; tab[lo] = tab[j]; tab[j] = tmp;
    qsort(lo, j);
    qsort(j + 1, hi);
}

int main() {
    int i;
    for (i = 0; i < N; i++) tab[i] = (int)(rnd() % 1000);
    qsort(0, N);
    for (i = 1; i < N; i++) {
        if (tab[i - 1] > tab[i]) return 0;
    }
    return 1;
}
