/* CompCert test suite: mandelbrot.c (adapted).  Computes an
 * approximation of the Mandelbrot set over a W x H grid; instead of
 * writing a PBM bitmap it accumulates the packed bytes into a checksum
 * printed at the end.  Everything happens in main (Table 1 reports the
 * single bound for main). */

#ifndef W
#define W 48
#endif
#ifndef H
#define H 48
#endif
#define ITER 50

int main() {
    int x, y, i;
    int bit_num = 0;
    int byte_acc = 0;
    int checksum = 0;
    double limit = 2.0;
    double Zr, Zi, Cr, Ci, Tr, Ti;

    for (y = 0; y < H; y++) {
        for (x = 0; x < W; x++) {
            Zr = 0.0; Zi = 0.0; Tr = 0.0; Ti = 0.0;
            Cr = 2.0 * (double)x / W - 1.5;
            Ci = 2.0 * (double)y / H - 1.0;
            for (i = 0; i < ITER && Tr + Ti <= limit * limit; i++) {
                Zi = 2.0 * Zr * Zi + Ci;
                Zr = Tr - Ti + Cr;
                Tr = Zr * Zr;
                Ti = Zi * Zi;
            }
            byte_acc = byte_acc << 1;
            if (Tr + Ti <= limit * limit) byte_acc = byte_acc | 1;
            bit_num = bit_num + 1;
            if (bit_num == 8) {
                checksum = checksum + byte_acc;
                byte_acc = 0;
                bit_num = 0;
            }
        }
    }
    print_int(checksum);
    return checksum != 0;
}
