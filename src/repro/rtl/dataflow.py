"""A generic Kildall worklist solver for RTL dataflow problems.

Used by constant propagation (forward) and liveness (backward).  The
lattice is supplied by the client as a pair of callbacks; the solver only
needs a join and a transfer function, plus equality on facts.
"""

from __future__ import annotations

from typing import Callable, Mapping, TypeVar

from repro.rtl import ast as rtl

Fact = TypeVar("Fact")


def predecessors(graph: Mapping[int, rtl.Instr]) -> dict[int, list[int]]:
    preds: dict[int, list[int]] = {node: [] for node in graph}
    for node, instr in graph.items():
        for succ in instr.successors():
            preds.setdefault(succ, []).append(node)
    return preds


def solve_forward(function: rtl.RTLFunction, entry_fact: Fact,
                  join: Callable[[Fact, Fact], Fact],
                  transfer: Callable[[int, rtl.Instr, Fact], Fact],
                  equal: Callable[[Fact, Fact], bool]
                  ) -> dict[int, Fact]:
    """Facts *before* each node; unreachable nodes are absent."""
    facts: dict[int, Fact] = {function.entry: entry_fact}
    worklist = [function.entry]
    graph = function.graph
    while worklist:
        node = worklist.pop()
        instr = graph[node]
        out = transfer(node, instr, facts[node])
        for succ in instr.successors():
            if succ not in facts:
                facts[succ] = out
                worklist.append(succ)
            else:
                merged = join(facts[succ], out)
                if not equal(merged, facts[succ]):
                    facts[succ] = merged
                    worklist.append(succ)
    return facts


def solve_backward(function: rtl.RTLFunction, exit_fact: Fact,
                   join: Callable[[Fact, Fact], Fact],
                   transfer: Callable[[int, rtl.Instr, Fact], Fact],
                   equal: Callable[[Fact, Fact], bool]
                   ) -> dict[int, Fact]:
    """Facts *after* each node (the join over successors' before-facts)."""
    graph = function.graph
    preds = predecessors(graph)
    after: dict[int, Fact] = {node: exit_fact for node in graph}
    before: dict[int, Fact] = {}
    worklist = list(graph)
    while worklist:
        node = worklist.pop()
        instr = graph[node]
        new_before = transfer(node, instr, after[node])
        if node in before and equal(new_before, before[node]):
            continue
        before[node] = new_before
        for pred in preds.get(node, ()):
            merged = join(after[pred], new_before)
            if not equal(merged, after[pred]):
                after[pred] = merged
                worklist.append(pred)
    return after
