/* MiBench security/blowfish (adapted).  Real Blowfish Feistel structure
 * (18-entry P array, 4 x 256 S-boxes, 16 rounds), with the pages of
 * hex-digit initializer tables of the original replaced by a pseudo-
 * random fill that the key schedule then mixes, exactly as the real key
 * schedule re-encrypts the zero block.  Functions match Table 1:
 * BF_encrypt, BF_options, BF_ecb_encrypt, plus BF_set_key and main. */

#define BF_ROUNDS 16
#define NUM_BLOCKS 32

typedef unsigned int u32;

u32 P[BF_ROUNDS + 2];
u32 S[4 * 256];
u32 key[4] = {0x27182818, 0x31415926, 0x16180339, 0x14142135};
u32 data_in[2 * NUM_BLOCKS];
u32 data_enc[2 * NUM_BLOCKS];
u32 data_dec[2 * NUM_BLOCKS];
u32 seed = 0xB10F15;

u32 rnd() {
    seed = seed * 1664525 + 1013904223;
    return seed;
}

/* The Feistel round function F. */
u32 BF_F(u32 x) {
    u32 a = (x >> 24) & 0xFF;
    u32 b = (x >> 16) & 0xFF;
    u32 c = (x >> 8) & 0xFF;
    u32 d = x & 0xFF;
    return ((S[a] + S[256 + b]) ^ S[512 + c]) + S[768 + d];
}

/* Encrypt (encrypt != 0) or decrypt one 64-bit block in place. */
void BF_encrypt(u32 *data, int encrypt) {
    u32 l = data[0];
    u32 r = data[1];
    u32 t;
    int i;
    if (encrypt) {
        for (i = 0; i < BF_ROUNDS; i++) {
            l = l ^ P[i];
            r = r ^ BF_F(l);
            t = l; l = r; r = t;
        }
        t = l; l = r; r = t;
        r = r ^ P[BF_ROUNDS];
        l = l ^ P[BF_ROUNDS + 1];
    } else {
        for (i = BF_ROUNDS + 1; i > 1; i--) {
            l = l ^ P[i];
            r = r ^ BF_F(l);
            t = l; l = r; r = t;
        }
        t = l; l = r; r = t;
        r = r ^ P[1];
        l = l ^ P[0];
    }
    data[0] = l;
    data[1] = r;
}

/* Key schedule: fill the tables, fold the key into P, then replace all
 * table entries by successive encryptions of the zero block. */
void BF_set_key(int keywords) {
    int i;
    u32 block[2];
    for (i = 0; i < BF_ROUNDS + 2; i++) P[i] = rnd();
    for (i = 0; i < 4 * 256; i++) S[i] = rnd();
    for (i = 0; i < BF_ROUNDS + 2; i++) {
        P[i] = P[i] ^ key[i % keywords];
    }
    block[0] = 0;
    block[1] = 0;
    for (i = 0; i < BF_ROUNDS + 2; i = i + 2) {
        BF_encrypt(block, 1);
        P[i] = block[0];
        P[i + 1] = block[1];
    }
    for (i = 0; i < 4 * 256; i = i + 2) {
        BF_encrypt(block, 1);
        S[i] = block[0];
        S[i + 1] = block[1];
    }
}

/* Identifies the variant, like the original's version string. */
int BF_options() {
    return BF_ROUNDS;
}

/* Electronic-codebook mode over one block. */
void BF_ecb_encrypt(u32 *in, u32 *out, int encrypt) {
    u32 block[2];
    block[0] = in[0];
    block[1] = in[1];
    BF_encrypt(block, encrypt);
    out[0] = block[0];
    out[1] = block[1];
}

int main() {
    int i, ok = 1;
    BF_set_key(4);
    if (BF_options() != 16) return 0;
    for (i = 0; i < 2 * NUM_BLOCKS; i++) data_in[i] = rnd();
    for (i = 0; i < NUM_BLOCKS; i++) {
        BF_ecb_encrypt(&data_in[2 * i], &data_enc[2 * i], 1);
    }
    for (i = 0; i < NUM_BLOCKS; i++) {
        BF_ecb_encrypt(&data_enc[2 * i], &data_dec[2 * i], 0);
    }
    for (i = 0; i < 2 * NUM_BLOCKS; i++) {
        if (data_dec[i] != data_in[i]) ok = 0;
        if (data_enc[i] == data_in[i]) ok = 0;
    }
    print_int(ok);
    return ok;
}
