"""Seeded random generation of safe, well-typed C-subset programs.

Programs are *safe by construction*, so they exercise the non-wrong
fragment where all the paper's theorems apply:

* every variable is initialized at declaration;
* array indexing masks into bounds (array sizes are powers of two);
* divisors are forced non-zero (``(e & 7) + 1``);
* loops are counted with fixed small bounds, so execution terminates;
* the call graph is layered (functions only call earlier functions), so
  the automatic analyzer accepts every generated program.

Observable behavior comes from ``print_int`` calls sprinkled through the
code and the final checksum return value, making trace comparison across
compilation levels meaningful.
"""

from __future__ import annotations

import random
from typing import Optional


class ProgramGenerator:
    def __init__(self, seed: int, max_functions: int = 4,
                 max_stmts: int = 6, max_depth: int = 3,
                 recursion: bool = False, funcptr: bool = False) -> None:
        self.rng = random.Random(seed)
        self.max_functions = max_functions
        self.max_stmts = max_stmts
        self.max_depth = max_depth
        self.recursion = recursion
        self.funcptr = funcptr
        self.global_arrays: list[tuple[str, int]] = []
        self.global_scalars: list[str] = []
        self.functions: list[tuple[str, int]] = []  # (name, n_params)
        self.op_functions: list[str] = []   # fp candidates: int (int, int)
        self.dispatchers: list[str] = []    # take an fp first parameter
        self._loop_counter = 0
        self._fvars: list[str] = []      # float locals of the current fn
        self._float_counter = 0

    # -- float expressions ----------------------------------------------------

    def fexpr(self, variables: list[str], fvariables: list[str],
              depth: int) -> str:
        """A double-valued expression.

        Safe by construction: divisions add 1.0 to the (squared, hence
        non-negative) divisor, and the only int→float direction is the
        always-defined conversion, so no NaN/∞ can reach an int cast.
        """
        rng = self.rng
        if depth <= 0 or rng.random() < 0.35:
            choice = rng.random()
            if choice < 0.4 and fvariables:
                return rng.choice(fvariables)
            if choice < 0.6 and variables:
                return f"(double)({self.expr(variables, 0)})"
            return f"{rng.uniform(-8.0, 8.0):.4f}"
        kind = rng.random()
        left = self.fexpr(variables, fvariables, depth - 1)
        right = self.fexpr(variables, fvariables, depth - 1)
        if kind < 0.6:
            op = rng.choice(["+", "-", "*"])
            return f"({left} {op} {right})"
        if kind < 0.8:
            return f"({left} / (({right}) * ({right}) + 1.0))"
        return f"(-({left}))"

    def fcompare(self, variables: list[str], fvariables: list[str]) -> str:
        """An int-valued comparison of two float expressions."""
        op = self.rng.choice(["<", "<=", ">", ">=", "==", "!="])
        left = self.fexpr(variables, fvariables, 1)
        right = self.fexpr(variables, fvariables, 1)
        return f"({left} {op} {right})"

    # -- expressions --------------------------------------------------------

    def expr(self, variables: list[str], depth: int) -> str:
        """A safe int-valued expression over the given variables."""
        rng = self.rng
        if depth <= 0 or rng.random() < 0.3:
            choice = rng.random()
            if choice < 0.4 and variables:
                return rng.choice(variables)
            if choice < 0.6 and self.global_scalars:
                return rng.choice(self.global_scalars)
            if choice < 0.8 and self.global_arrays:
                name, size = rng.choice(self.global_arrays)
                index = self.expr(variables, 0)
                return f"{name}[({index}) & {size - 1}]"
            return str(rng.randint(-100, 100))
        kind = rng.random()
        left = self.expr(variables, depth - 1)
        right = self.expr(variables, depth - 1)
        if kind < 0.55:
            op = rng.choice(["+", "-", "*", "^", "&", "|"])
            return f"({left} {op} {right})"
        if kind < 0.65:
            op = rng.choice(["/", "%"])
            return f"({left} {op} ((({right}) & 7) + 1))"
        if kind < 0.75:
            op = rng.choice(["<<", ">>"])
            return f"(({left} & 1023) {op} (({right}) & 7))"
        if kind < 0.9:
            op = rng.choice(["<", "<=", ">", ">=", "==", "!="])
            return f"({left} {op} {right})"
        if self.functions and kind < 0.94:
            name, n_params = rng.choice(self.functions)
            args = [self.expr(variables, depth - 1)
                    for _ in range(n_params)]
            if name in getattr(self, "_recursive_names", ()):
                # bound the recursion depth at every call site
                args[0] = f"(({args[0]}) & 63)"
            return f"{name}({', '.join(args)})"
        if kind < 0.97 and self._fvars:
            return self.fcompare(variables, self._fvars)
        return f"(-({left}))"

    # -- statements ---------------------------------------------------------

    def block(self, variables: list[str], depth: int, indent: str,
              writable: Optional[list[str]] = None) -> str:
        lines = []
        for _ in range(self.rng.randint(1, self.max_stmts)):
            lines.append(self.stmt(variables, depth, indent, writable))
        return "\n".join(lines)

    def stmt(self, variables: list[str], depth: int, indent: str,
             writable: Optional[list[str]] = None) -> str:
        rng = self.rng
        # Loop counters are readable but never written, so loops always
        # terminate and the generated programs stay safe by construction.
        if writable is None:
            writable = variables
        kind = rng.random()
        if kind < 0.35 and writable:
            target = rng.choice(writable)
            return f"{indent}{target} = {self.expr(variables, depth)};"
        if kind < 0.45 and self.global_arrays:
            name, size = rng.choice(self.global_arrays)
            index = self.expr(variables, 1)
            return (f"{indent}{name}[({index}) & {size - 1}] = "
                    f"{self.expr(variables, depth)};")
        if kind < 0.55 and self.global_scalars:
            target = rng.choice(self.global_scalars)
            return f"{indent}{target} = {self.expr(variables, depth)};"
        if kind < 0.7 and depth > 0:
            cond = self.expr(variables, 1)
            then = self.block(variables, depth - 1, indent + "    ", writable)
            if rng.random() < 0.5:
                other = self.block(variables, depth - 1, indent + "    ",
                                   writable)
                return (f"{indent}if ({cond}) {{\n{then}\n{indent}}} "
                        f"else {{\n{other}\n{indent}}}")
            return f"{indent}if ({cond}) {{\n{then}\n{indent}}}"
        if kind < 0.82 and depth > 0:
            self._loop_counter += 1
            counter = f"it{self._loop_counter}"
            bound = rng.randint(1, 8)
            body_vars = variables + [counter]
            body = self.block(body_vars, depth - 1, indent + "    ", writable)
            extra = ""
            if rng.random() < 0.3:
                extra = f"\n{indent}    if ({counter} == {bound // 2}) continue;"
            return (f"{indent}for (int {counter} = 0; {counter} < {bound}; "
                    f"{counter}++) {{{extra}\n{body}\n{indent}}}")
        if kind < 0.85 and self._fvars:
            target = rng.choice(self._fvars)
            value = self.fexpr(variables, self._fvars, depth)
            return f"{indent}{target} = {value};"
        if kind < 0.88 and self._fvars:
            return (f"{indent}print_float("
                    f"{self.fexpr(variables, self._fvars, 1)});")
        if kind < 0.9:
            return f"{indent}print_int({self.expr(variables, 1)});"
        if writable:
            target = rng.choice(writable)
            op = rng.choice(["+=", "-=", "^=", "*="])
            return f"{indent}{target} {op} {self.expr(variables, depth - 1)};"
        return f"{indent};"

    # -- declarations -------------------------------------------------------

    def function(self, index: int) -> str:
        rng = self.rng
        name = f"fn{index}"
        n_params = rng.randint(0, 3)
        params = [f"p{i}" for i in range(n_params)]
        param_list = ", ".join(f"int {p}" for p in params) or "void"
        n_locals = rng.randint(1, 3)
        local_names = [f"v{i}" for i in range(n_locals)]
        lines = [f"int {name}({param_list}) {{"]
        variables = list(params)
        self._fvars = []  # the previous function's doubles are out of scope
        for local in local_names:
            lines.append(f"    int {local} = {self.expr(variables, 1)};")
            variables.append(local)
        self._fvars = []
        for _ in range(rng.randint(0, 2)):
            self._float_counter += 1
            fname = f"d{self._float_counter}"
            lines.append(f"    double {fname} = "
                         f"{self.fexpr(variables, [], 1)};")
            self._fvars.append(fname)
        lines.append(self.block(variables, self.max_depth, "    ",
                                list(variables)))
        lines.append(f"    return {self.expr(variables, 2)};")
        lines.append("}")
        self.functions.append((name, n_params))
        return "\n".join(lines)

    def recursive_function(self, index: int) -> str:
        """A structurally recursive function with a decreasing first
        argument — termination is guaranteed, depth is bounded by the
        call-site argument, and some of them are tail calls (exercising
        the tail-call pass when it is enabled)."""
        rng = self.rng
        name = f"rec{index}"
        self._fvars = []
        acc = self.expr(["n", "acc"], 1)
        tail = rng.random() < 0.5
        lines = [f"int {name}(int n, int acc) {{",
                 f"    if (n <= 0) return acc;"]
        if tail:
            lines.append(f"    return {name}(n - 1, acc ^ ({acc}));")
        else:
            lines.append(f"    return (acc & 1) + {name}(n - 1, "
                         f"acc ^ ({acc}));")
        lines.append("}")
        self.functions.append((name, 2))
        # Recursive functions are called with a bounded positive depth.
        self._recursive_names = getattr(self, "_recursive_names", set())
        self._recursive_names.add(name)
        return "\n".join(lines)

    def op_function(self, index: int) -> str:
        """A binary operator function — a candidate target for the
        generated function pointers (signature ``int (int, int)``)."""
        name = f"op{index}"
        self._fvars = []
        body = self.expr(["a", "b"], 2)
        self.op_functions.append(name)
        self.functions.append((name, 2))
        return f"int {name}(int a, int b) {{\n    return {body};\n}}"

    def dispatcher(self, index: int) -> str:
        """A higher-order function calling through its fp parameter;
        exercises both spellings (``op(...)`` and ``(*op)(...)``)."""
        rng = self.rng
        name = f"disp{index}"
        lines = [f"int {name}(int (*op)(int, int), int x, int y) {{"]
        if rng.random() < 0.5:
            lines.append("    if (x > y) return op(y, x);")
        lines.append("    return op(x, y) ^ (*op)(y, x);")
        lines.append("}")
        self.dispatchers.append(name)
        return "\n".join(lines)

    def generate(self) -> str:
        rng = self.rng
        parts = ["/* generated by repro.testing.progen */"]
        n_scalars = rng.randint(1, 3)
        for i in range(n_scalars):
            name = f"g{i}"
            parts.append(f"int {name} = {rng.randint(-50, 50)};")
            self.global_scalars.append(name)
        n_arrays = rng.randint(1, 2)
        for i in range(n_arrays):
            name = f"arr{i}"
            size = rng.choice([8, 16, 32])
            parts.append(f"int {name}[{size}];")
            self.global_arrays.append((name, size))
        if self.funcptr:
            for i in range(rng.randint(2, 3)):
                parts.append(self.op_function(i))
        for i in range(rng.randint(1, self.max_functions)):
            if self.recursion and rng.random() < 0.4:
                parts.append(self.recursive_function(i))
            else:
                parts.append(self.function(i))
        if self.funcptr:
            for i in range(rng.randint(1, 2)):
                parts.append(self.dispatcher(i))
        # main: initialize arrays, exercise the functions, return checksum.
        self._fvars = []
        lines = ["int main() {", "    int acc = 0;",
                 "    double dm = 0.5;"]
        self._fvars.append("dm")
        for name, size in self.global_arrays:
            self._loop_counter += 1
            counter = f"it{self._loop_counter}"
            lines.append(f"    for (int {counter} = 0; {counter} < {size}; "
                         f"{counter}++) {name}[{counter}] = {counter} * 7;")
        lines.append(self.block(["acc"], self.max_depth, "    ",
                                ["acc"]))
        for name, n_params in self.functions:
            args = [str(rng.randint(-20, 20)) for _ in range(n_params)]
            if name in getattr(self, "_recursive_names", ()):
                args[0] = str(rng.randint(0, 48))
            lines.append(f"    acc ^= {name}({', '.join(args)});")
        if self.op_functions:
            # A reassigned local function pointer plus dispatcher calls:
            # the value analysis must resolve every site to a finite
            # candidate set for the seed to analyze at all.
            lines.append(f"    int (*fp)(int, int) = "
                         f"{rng.choice(self.op_functions)};")
            lines.append(f"    if (acc & 1) fp = "
                         f"{rng.choice(self.op_functions)};")
            lines.append(f"    acc ^= fp(acc, {rng.randint(-20, 20)});")
            for disp in self.dispatchers:
                source = rng.choice(self.op_functions + ["fp"])
                lines.append(f"    acc ^= {disp}({source}, "
                             f"{rng.randint(-20, 20)}, acc);")
        lines.append("    print_int(acc);")
        lines.append("    return acc & 0xff;")
        lines.append("}")
        parts.append("\n".join(lines))
        return "\n\n".join(parts)


def generate_program(seed: int, **kwargs) -> str:
    """One safe random program as C source text."""
    return ProgramGenerator(seed, **kwargs).generate()
